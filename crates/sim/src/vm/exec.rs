//! Execution: the `loop { match op }` dispatch core and the per-machine
//! VM state (bytecode cache + reusable frame stack).
//!
//! Every trace-counter bump, error-production order and step-budget
//! decrement below mirrors `crate::interp::Machine::run_frame` /
//! `exec_inst` exactly — when editing either, edit both, and let
//! `tests/engine_equivalence.rs` arbitrate.
//!
//! The frame stack is threaded through as a plain `&mut Vec` (taken out of
//! [`VmState`] for the duration of a run) rather than accessed through
//! `self`: the dispatch loop's slot reads then go through a `noalias`
//! reference the optimiser can keep in registers across the opaque cache
//! and memory calls. The step budget likewise lives in a local for the
//! duration of one frame, synced at call boundaries.

use std::rc::Rc;
use std::time::Instant;

use crate::interp::{
    exec_binop, exec_cmp, exec_unop, BranchProfile, CachePort, InterpError, Machine, Slot,
};
use crate::memory::Val;
use crate::timing::{level_index, DemandMiss, PhaseTrace, TimingConfig};
use dae_ir::{BlockId, FuncId, UnOp};
use dae_mem::HitLevel;

use super::lower::{lower, CompiledFunc, Op};
use super::LowerSpan;

/// Per-machine VM state: lazily lowered bytecode per `FuncId`, one frame
/// stack reused across every call, and the pending lower-time spans.
#[derive(Default)]
pub(crate) struct VmState {
    compiled: Vec<Option<Rc<CompiledFunc>>>,
    stack: Vec<Slot>,
    lower_spans: Vec<LowerSpan>,
}

/// Where a callee's arguments come from.
enum ArgSrc<'a> {
    /// Top-level entry: plain values, untainted.
    Vals(&'a [Val]),
    /// A `Call` op: slot indices into the caller's frame region.
    Frame { caller_base: usize, idxs: &'a [u32] },
}

impl ArgSrc<'_> {
    fn len(&self) -> usize {
        match self {
            ArgSrc::Vals(v) => v.len(),
            ArgSrc::Frame { idxs, .. } => idxs.len(),
        }
    }
}

impl Machine<'_> {
    /// Pending bytecode-lowering spans, drained. Lowering happens at most
    /// once per function per machine, so the list is bounded by the
    /// module's function count even when nobody drains it.
    pub fn take_lower_spans(&mut self) -> Vec<LowerSpan> {
        std::mem::take(&mut self.vm.lower_spans)
    }

    /// Bytecode-engine twin of the tree-walking `run`/`run_with_profile`.
    pub(crate) fn vm_run(
        &mut self,
        func: FuncId,
        args: &[Val],
        caches: &mut CachePort<'_>,
        trace: &mut PhaseTrace,
        profile: Option<&mut BranchProfile>,
    ) -> Result<Option<Val>, InterpError> {
        let mut steps_left = self.config.max_steps;
        let mut stack = std::mem::take(&mut self.vm.stack);
        let r = self.vm_invoke(
            func,
            ArgSrc::Vals(args),
            &mut stack,
            0,
            caches,
            trace,
            &mut steps_left,
            0,
            profile,
        );
        self.vm.stack = stack;
        Ok(r?.map(|(v, _)| v))
    }

    /// The cached bytecode of `func_id`, lowering (and recording a
    /// [`LowerSpan`]) on first use.
    fn compiled(&mut self, func_id: FuncId) -> Rc<CompiledFunc> {
        let ix = func_id.0 as usize;
        if self.vm.compiled.len() <= ix {
            self.vm.compiled.resize(ix + 1, None);
        }
        if let Some(c) = &self.vm.compiled[ix] {
            return Rc::clone(c);
        }
        let t0 = Instant::now();
        let func = self.module.func(func_id);
        let cf = Rc::new(lower(func, &self.memory));
        self.vm.lower_spans.push(LowerSpan {
            func: cf.name.clone(),
            ops: cf.ops.len() as u32,
            fused: cf.fused,
            wall_s: t0.elapsed().as_secs_f64(),
        });
        self.vm.compiled[ix] = Some(Rc::clone(&cf));
        cf
    }

    /// One activation: depth/arity checks (same order and messages as the
    /// tree-walker), frame carve-out at `base`, execute.
    ///
    /// The stack is high-water-marked: it grows to cover `base + frame_len`
    /// and is never truncated, so a call re-entering a popped region reuses
    /// the (stale but initialised) slots without a zero-fill. Program
    /// results never observe the stale values — lowered code for a verified
    /// (SSA-dominant) function writes every slot it reads, and the constant
    /// pool is (re)copied on every entry.
    #[allow(clippy::too_many_arguments)]
    fn vm_invoke(
        &mut self,
        func_id: FuncId,
        args: ArgSrc<'_>,
        stack: &mut Vec<Slot>,
        base: usize,
        caches: &mut CachePort<'_>,
        trace: &mut PhaseTrace,
        steps_left: &mut u64,
        depth: usize,
        profile: Option<&mut BranchProfile>,
    ) -> Result<Option<Slot>, InterpError> {
        if depth > self.config.max_call_depth {
            return Err(InterpError::Trap("call depth exceeded".into()));
        }
        let f = self.compiled(func_id);
        if f.params != args.len() {
            return Err(InterpError::Trap(format!(
                "function `{}` expects {} args, got {}",
                f.name,
                f.params,
                args.len()
            )));
        }
        if stack.len() < base + f.frame_len {
            stack.resize(base + f.frame_len, (Val::I(0), false));
        }
        let cb = base + f.const_base;
        stack[cb..cb + f.consts.len()].copy_from_slice(&f.consts);
        match args {
            ArgSrc::Vals(vals) => {
                for (i, v) in vals.iter().enumerate() {
                    stack[base + i] = (*v, false);
                }
            }
            ArgSrc::Frame { caller_base, idxs } => {
                for (i, &s) in idxs.iter().enumerate() {
                    stack[base + i] = stack[caller_base + s as usize];
                }
            }
        }
        self.vm_exec(&f, base, stack, caches, trace, steps_left, depth, profile)
    }

    /// The dispatch loop over one frame.
    ///
    /// # Safety of the unchecked indexing
    ///
    /// Every frame index, branch target and pool range in a
    /// [`CompiledFunc`] was checked by `lower::validate` when the function
    /// was lowered: frame indices are `< frame_len`, targets are
    /// `< ops.len()`, pool ranges lie inside their pools, and the program
    /// cannot fall off the end (the final op is a terminator, so every
    /// fall-through op has a successor). `vm_invoke` grew the stack to at
    /// least `base + frame_len` before entry, and the stack never shrinks
    /// (high-water discipline), so `base + i` is in bounds for every
    /// validated `i` throughout the frame's lifetime.
    #[allow(clippy::too_many_arguments)]
    fn vm_exec(
        &mut self,
        f: &CompiledFunc,
        base: usize,
        stack: &mut Vec<Slot>,
        caches: &mut CachePort<'_>,
        trace: &mut PhaseTrace,
        steps_left: &mut u64,
        depth: usize,
        mut profile: Option<&mut BranchProfile>,
    ) -> Result<Option<Slot>, InterpError> {
        debug_assert!(stack.len() >= base + f.frame_len);
        let cfg_extra = TimingConfig::default();
        let ops: &[Op] = &f.ops;
        let mut pc = f.entry_pc as usize;
        // The budget lives in a register for the duration of the frame,
        // synced back around calls and on every exit. The four per-op trace
        // counters likewise accumulate in locals (one register add instead
        // of a read-modify-write through the `&mut PhaseTrace` on every
        // dispatched op) and are flushed by `sync!` on every exit path, so
        // an error-path trace is indistinguishable from the tree-walker's.
        let mut steps = *steps_left;
        let mut n_instrs = trace.instrs;
        let mut n_addr = trace.addr_ops;
        let mut n_branches = trace.branches;
        let mut n_fp = trace.fp_ops;
        /// Flushes the local counters back into the trace.
        macro_rules! sync {
            () => {
                trace.instrs = n_instrs;
                trace.addr_ops = n_addr;
                trace.branches = n_branches;
                trace.fp_ops = n_fp;
            };
        }
        /// Reloads the local counters after a callee mutated the trace.
        macro_rules! reload {
            () => {
                n_instrs = trace.instrs;
                n_addr = trace.addr_ops;
                n_branches = trace.branches;
                n_fp = trace.fp_ops;
            };
        }
        /// `?`, flushing the local counters on the error path first.
        macro_rules! tryv {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(e) => {
                        sync!();
                        return Err(e.into());
                    }
                }
            };
        }
        /// Budget check-and-decrement preceding every dynamic instruction
        /// and terminator, exactly like the tree-walker's block loop.
        macro_rules! step {
            () => {
                if steps == 0 {
                    sync!();
                    *steps_left = 0;
                    return Err(InterpError::StepLimit);
                }
                steps -= 1;
            };
        }
        /// Reads frame slot `$i` (validated `< frame_len` at lower time).
        macro_rules! slot {
            ($i:expr) => {{
                debug_assert!(($i as usize) < f.frame_len);
                unsafe { *stack.get_unchecked(base + $i as usize) }
            }};
        }
        /// Writes frame slot `$i` (validated `< frame_len` at lower time).
        macro_rules! set {
            ($i:expr, $v:expr) => {{
                debug_assert!(($i as usize) < f.frame_len);
                let v = $v;
                unsafe { *stack.get_unchecked_mut(base + $i as usize) = v };
            }};
        }
        macro_rules! moves {
            ($r:expr) => {
                let (s, l) = $r;
                debug_assert!((s + l) as usize <= f.moves.len());
                for m in unsafe { f.moves.get_unchecked(s as usize..(s + l) as usize) } {
                    set!(m.dst, slot!(m.src));
                }
            };
        }
        /// A specialised integer binop: same operand evaluation and error
        /// order as `exec_binop`, without its per-execution op dispatch.
        macro_rules! ibin {
            ($a:expr, $b:expr, $dst:expr, $f:expr) => {{
                step!();
                n_instrs += 1;
                let (av, ta) = slot!($a);
                let (bv, tb) = slot!($b);
                let v = Val::I($f(tryv!(av.try_i()), tryv!(bv.try_i())));
                set!($dst, (v, ta || tb));
                pc += 1;
            }};
        }
        /// A specialised float binop (bumps `fp_ops` like the tree-walker).
        macro_rules! fbin {
            ($a:expr, $b:expr, $dst:expr, $f:expr) => {{
                step!();
                n_instrs += 1;
                let (av, ta) = slot!($a);
                let (bv, tb) = slot!($b);
                let v = Val::F($f(tryv!(av.try_f()), tryv!(bv.try_f())));
                n_fp += 1;
                set!($dst, (v, ta || tb));
                pc += 1;
            }};
        }
        /// The demand-load core for the type-specialised load ops:
        /// identical cache/trace modelling to `load!`, with the value
        /// produced by `$read` (a closure over the checked address) instead
        /// of a generic `try_read`.
        macro_rules! load_as {
            ($read:expr, $addr:expr, $taint:expr, $dst:expr) => {
                let a: u64 = $addr;
                trace.loads += 1;
                let (level, hw_covered) = caches.core.access_demand(caches.llc, a);
                let missed = level == HitLevel::Memory;
                if missed && hw_covered {
                    trace.hw_prefetch_lines += 1;
                } else {
                    trace.demand_hits[level_index(level)] += 1;
                    if missed {
                        trace
                            .demand_misses
                            .push(DemandMiss { instr_idx: n_instrs, dependent: $taint });
                    }
                }
                let v = $read(a);
                set!($dst, (v, missed && !hw_covered));
            };
        }
        /// The demand-load core shared by `Load` and `PtrAddLoad`.
        macro_rules! load {
            ($ty:expr, $addr:expr, $taint:expr, $dst:expr) => {
                let a: u64 = $addr;
                trace.loads += 1;
                let (level, hw_covered) = caches.core.access_demand(caches.llc, a);
                let missed = level == HitLevel::Memory;
                if missed && hw_covered {
                    trace.hw_prefetch_lines += 1;
                } else {
                    trace.demand_hits[level_index(level)] += 1;
                    if missed {
                        trace
                            .demand_misses
                            .push(DemandMiss { instr_idx: n_instrs, dependent: $taint });
                    }
                }
                let v = tryv!(self.memory.try_read($ty, a));
                set!($dst, (v, missed && !hw_covered));
            };
        }
        loop {
            debug_assert!(pc < ops.len());
            // Matched by reference on purpose: dereferencing would copy the
            // whole `Op` (up to 9 words for `CmpBr`) on every dispatch.
            #[allow(clippy::match_ref_pats)]
            match unsafe { ops.get_unchecked(pc) } {
                &Op::Bin { op, a, b, dst, folded } => {
                    step!();
                    if folded {
                        n_addr += 1;
                    } else {
                        n_instrs += 1;
                    }
                    let (av, ta) = slot!(a);
                    let (bv, tb) = slot!(b);
                    let v = tryv!(exec_binop(op, av, bv));
                    if op.is_float() {
                        n_fp += 1;
                    }
                    match op {
                        dae_ir::BinOp::IDiv | dae_ir::BinOp::IRem => {
                            trace.extra_lat_cycles += cfg_extra.idiv_cyc;
                        }
                        dae_ir::BinOp::FDiv => trace.extra_lat_cycles += cfg_extra.fdiv_cyc,
                        _ => {}
                    }
                    set!(dst, (v, ta || tb));
                    pc += 1;
                }
                &Op::IAdd { a, b, dst } => ibin!(a, b, dst, i64::wrapping_add),
                &Op::ISub { a, b, dst } => ibin!(a, b, dst, i64::wrapping_sub),
                &Op::IMul { a, b, dst, folded } => {
                    step!();
                    if folded {
                        n_addr += 1;
                    } else {
                        n_instrs += 1;
                    }
                    let (av, ta) = slot!(a);
                    let (bv, tb) = slot!(b);
                    let v = Val::I(tryv!(av.try_i()).wrapping_mul(tryv!(bv.try_i())));
                    set!(dst, (v, ta || tb));
                    pc += 1;
                }
                &Op::IAnd { a, b, dst } => ibin!(a, b, dst, |x, y| x & y),
                &Op::IOr { a, b, dst } => ibin!(a, b, dst, |x, y| x | y),
                &Op::IXor { a, b, dst } => ibin!(a, b, dst, |x, y| x ^ y),
                &Op::IShl { a, b, dst } => ibin!(a, b, dst, |x: i64, y| x.wrapping_shl(y as u32)),
                &Op::IAShr { a, b, dst } => ibin!(a, b, dst, |x: i64, y| x.wrapping_shr(y as u32)),
                &Op::FAdd { a, b, dst } => fbin!(a, b, dst, |x, y| x + y),
                &Op::FSub { a, b, dst } => fbin!(a, b, dst, |x, y| x - y),
                &Op::FMul { a, b, dst } => fbin!(a, b, dst, |x, y| x * y),
                &Op::Un { op, a, dst } => {
                    step!();
                    n_instrs += 1;
                    let (av, t) = slot!(a);
                    if matches!(op, UnOp::FSqrt) {
                        n_fp += 1;
                        trace.extra_lat_cycles += cfg_extra.fsqrt_cyc;
                    }
                    set!(dst, (tryv!(exec_unop(op, av)), t));
                    pc += 1;
                }
                &Op::Cmp { op, a, b, dst } => {
                    step!();
                    n_instrs += 1;
                    let (av, ta) = slot!(a);
                    let (bv, tb) = slot!(b);
                    set!(dst, (Val::B(tryv!(exec_cmp(op, av, bv))), ta || tb));
                    pc += 1;
                }
                &Op::Select { cond, then_s, else_s, dst } => {
                    step!();
                    n_instrs += 1;
                    let (c, tc) = slot!(cond);
                    let (v, tv) = if tryv!(c.try_b()) { slot!(then_s) } else { slot!(else_s) };
                    set!(dst, (v, tc || tv));
                    pc += 1;
                }
                &Op::PtrAdd { base: pb, offset, dst } => {
                    step!();
                    n_addr += 1;
                    let (bv, tb) = slot!(pb);
                    let (ov, to) = slot!(offset);
                    set!(
                        dst,
                        (
                            Val::P(
                                (tryv!(bv.try_p()) as i64).wrapping_add(tryv!(ov.try_i())) as u64
                            ),
                            tb || to
                        )
                    );
                    pc += 1;
                }
                &Op::Load { ty, addr, dst } => {
                    step!();
                    n_instrs += 1;
                    let (av, taint) = slot!(addr);
                    load!(ty, tryv!(av.try_p()), taint, dst);
                    pc += 1;
                }
                &Op::LoadF { addr, dst } => {
                    step!();
                    n_instrs += 1;
                    let (av, taint) = slot!(addr);
                    let rd = |a| Val::F(f64::from_bits(self.memory.read_u64(a)));
                    load_as!(rd, tryv!(av.try_p()), taint, dst);
                    pc += 1;
                }
                &Op::LoadI { addr, dst } => {
                    step!();
                    n_instrs += 1;
                    let (av, taint) = slot!(addr);
                    let rd = |a| Val::I(self.memory.read_u64(a) as i64);
                    load_as!(rd, tryv!(av.try_p()), taint, dst);
                    pc += 1;
                }
                &Op::Store { addr, value } => {
                    step!();
                    n_instrs += 1;
                    let (av, _) = slot!(addr);
                    let a = tryv!(av.try_p());
                    let (v, _) = slot!(value);
                    trace.stores += 1;
                    let (level, writebacks) = caches.core.access_write(caches.llc, a);
                    if level == HitLevel::Memory {
                        trace.store_mem_misses += 1;
                    }
                    trace.writeback_lines += writebacks;
                    self.memory.write(a, v);
                    pc += 1;
                }
                &Op::Prefetch { addr } => {
                    step!();
                    n_instrs += 1;
                    let (av, _) = slot!(addr);
                    trace.prefetches += 1;
                    let p = tryv!(av.try_p());
                    if (p as usize) < self.memory.size() && p >= 0x1000 {
                        let level = caches.core.access(caches.llc, p);
                        trace.prefetch_hits[level_index(level)] += 1;
                    }
                    pc += 1;
                }
                &Op::Call { callee, args: (s, l), dst } => {
                    step!();
                    n_instrs += 1;
                    debug_assert!((s + l) as usize <= f.call_args.len());
                    let idxs = unsafe { f.call_args.get_unchecked(s as usize..(s + l) as usize) };
                    sync!();
                    *steps_left = steps;
                    let r = self.vm_invoke(
                        callee,
                        ArgSrc::Frame { caller_base: base, idxs },
                        stack,
                        base + f.frame_len,
                        caches,
                        trace,
                        steps_left,
                        depth + 1,
                        None,
                    )?;
                    steps = *steps_left;
                    reload!();
                    if let Some(slot) = r {
                        set!(dst, slot);
                    }
                    pc += 1;
                }
                &Op::Jump { target, moves: mv } => {
                    step!();
                    n_instrs += 1;
                    n_branches += 1;
                    moves!(mv);
                    pc = target as usize;
                }
                &Op::Branch { cond, block, then_target, then_moves, else_target, else_moves } => {
                    step!();
                    n_instrs += 1;
                    n_branches += 1;
                    let (c, _) = slot!(cond);
                    let taken = tryv!(c.try_b());
                    if let Some(p) = profile.as_deref_mut() {
                        p.record(BlockId(block), taken);
                    }
                    if taken {
                        moves!(then_moves);
                        pc = then_target as usize;
                    } else {
                        moves!(else_moves);
                        pc = else_target as usize;
                    }
                }
                &Op::Ret { val } => {
                    step!();
                    n_instrs += 1;
                    n_branches += 1;
                    sync!();
                    *steps_left = steps;
                    return Ok(val.map(|i| slot!(i)));
                }
                &Op::CmpBr {
                    op,
                    a,
                    b,
                    dst,
                    block,
                    then_target,
                    then_moves,
                    else_target,
                    else_moves,
                } => {
                    // Constituent 1: the compare (step + instr + result).
                    step!();
                    n_instrs += 1;
                    let (av, ta) = slot!(a);
                    let (bv, tb) = slot!(b);
                    let taken = tryv!(exec_cmp(op, av, bv));
                    set!(dst, (Val::B(taken), ta || tb));
                    // Constituent 2: the branch (fresh bool, no try_b).
                    step!();
                    n_instrs += 1;
                    n_branches += 1;
                    if let Some(p) = profile.as_deref_mut() {
                        p.record(BlockId(block), taken);
                    }
                    if taken {
                        moves!(then_moves);
                        pc = then_target as usize;
                    } else {
                        moves!(else_moves);
                        pc = else_target as usize;
                    }
                }
                &Op::PtrAddLoad { base: pb, offset, ptr_dst, ty, dst } => {
                    // Constituent 1: the folded address compute.
                    step!();
                    n_addr += 1;
                    let (bv, tb) = slot!(pb);
                    let (ov, to) = slot!(offset);
                    let p = (tryv!(bv.try_p()) as i64).wrapping_add(tryv!(ov.try_i())) as u64;
                    let pt = tb || to;
                    set!(ptr_dst, (Val::P(p), pt));
                    // Constituent 2: the load (the address is a fresh
                    // pointer, so the tree-walker's try_p cannot fail).
                    step!();
                    n_instrs += 1;
                    load!(ty, p, pt, dst);
                    pc += 1;
                }
                &Op::PtrAddLoadF { base: pb, offset, ptr_dst, dst } => {
                    step!();
                    n_addr += 1;
                    let (bv, tb) = slot!(pb);
                    let (ov, to) = slot!(offset);
                    let p = (tryv!(bv.try_p()) as i64).wrapping_add(tryv!(ov.try_i())) as u64;
                    let pt = tb || to;
                    set!(ptr_dst, (Val::P(p), pt));
                    step!();
                    n_instrs += 1;
                    let rd = |a| Val::F(f64::from_bits(self.memory.read_u64(a)));
                    load_as!(rd, p, pt, dst);
                    pc += 1;
                }
                &Op::PtrAddLoadI { base: pb, offset, ptr_dst, dst } => {
                    step!();
                    n_addr += 1;
                    let (bv, tb) = slot!(pb);
                    let (ov, to) = slot!(offset);
                    let p = (tryv!(bv.try_p()) as i64).wrapping_add(tryv!(ov.try_i())) as u64;
                    let pt = tb || to;
                    set!(ptr_dst, (Val::P(p), pt));
                    step!();
                    n_instrs += 1;
                    let rd = |a| Val::I(self.memory.read_u64(a) as i64);
                    load_as!(rd, p, pt, dst);
                    pc += 1;
                }
                &Op::AddJump { a, b, dst, target, moves: mv } => {
                    // Constituent 1: the integer add.
                    step!();
                    n_instrs += 1;
                    let (av, ta) = slot!(a);
                    let (bv, tb) = slot!(b);
                    let v = Val::I(tryv!(av.try_i()).wrapping_add(tryv!(bv.try_i())));
                    set!(dst, (v, ta || tb));
                    // Constituent 2: the back-edge jump.
                    step!();
                    n_instrs += 1;
                    n_branches += 1;
                    moves!(mv);
                    pc = target as usize;
                }
            }
        }
    }
}
