//! The IR interpreter: executes functions against simulated memory and a
//! cache hierarchy, producing an execution [`PhaseTrace`] for the timing
//! model.

use crate::memory::{Memory, TypeError, Val};
use crate::timing::{level_index, DemandMiss, PhaseTrace, TimingConfig};
use crate::vm::EngineKind;
use dae_ir::{BinOp, BlockId, CmpOp, FuncId, Function, InstKind, Module, Terminator, UnOp, Value};
use dae_mem::{CoreCaches, HitLevel, SharedLlc};
use std::fmt;

/// Interpreter limits and engine selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterpConfig {
    /// Abort after this many dynamic instructions (infinite-loop guard).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Which execution engine runs the code. Both produce identical
    /// results, traces and errors (see [`crate::vm`]).
    pub engine: EngineKind,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { max_steps: 2_000_000_000, max_call_depth: 64, engine: EngineKind::default() }
    }
}

/// Execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The dynamic instruction budget was exhausted.
    StepLimit,
    /// A runtime trap (division by zero, call depth, malformed IR).
    Trap(String),
    /// An operation received a value of the wrong runtime type (a
    /// malformed module that slipped past verification).
    TypeMismatch {
        /// The payload kind the operation required.
        expected: &'static str,
        /// The payload kind actually present.
        got: &'static str,
    },
    /// A load with a void result type.
    LoadVoid,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit => write!(f, "dynamic instruction budget exhausted"),
            InterpError::Trap(m) => write!(f, "trap: {m}"),
            InterpError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            InterpError::LoadVoid => write!(f, "cannot load a void value"),
        }
    }
}

impl std::error::Error for InterpError {}

impl dae_ir::CodedError for InterpError {
    fn code(&self) -> &'static str {
        match self {
            InterpError::StepLimit => "sim.step-limit",
            InterpError::Trap(_) => "sim.trap",
            InterpError::TypeMismatch { .. } => "sim.type-mismatch",
            InterpError::LoadVoid => "sim.load-void",
        }
    }
}

impl From<TypeError> for InterpError {
    fn from(e: TypeError) -> Self {
        match e {
            TypeError::Mismatch { expected, got } => InterpError::TypeMismatch { expected, got },
            TypeError::LoadVoid => InterpError::LoadVoid,
        }
    }
}

/// Per-block branch statistics of one function, collected by
/// [`Machine::run_with_profile`]: how often each conditional branch was
/// taken vs not taken. Input to profile-guided access generation.
#[derive(Clone, Debug, Default)]
pub struct BranchProfile {
    /// `(taken, not_taken)` counts of the branch terminating each block,
    /// indexed by block id (block ids are dense). Blocks past the last
    /// recorded branch are simply absent; blocks without a conditional
    /// branch stay `(0, 0)`.
    pub counts: Vec<(u64, u64)>,
}

impl BranchProfile {
    /// Records one execution of the branch at `block`, growing the table
    /// on first contact.
    pub fn record(&mut self, block: BlockId, taken: bool) {
        let i = block.0 as usize;
        if self.counts.len() <= i {
            self.counts.resize(i + 1, (0, 0));
        }
        let e = &mut self.counts[i];
        if taken {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    /// Fraction of executions in which the branch at `block` was taken;
    /// `None` if it never executed.
    pub fn taken_fraction(&self, block: BlockId) -> Option<f64> {
        let (t, n) = self.counts.get(block.0 as usize)?;
        let total = t + n;
        if total == 0 {
            None
        } else {
            Some(*t as f64 / total as f64)
        }
    }
}

/// The cache side of one core, borrowed for the duration of a run.
pub struct CachePort<'c> {
    /// Private L1/L2 of the executing core.
    pub core: &'c mut CoreCaches,
    /// Shared last-level cache.
    pub llc: &'c mut SharedLlc,
}

/// A module plus its simulated memory.
///
/// The machine is the long-lived object: memory persists across task runs,
/// exactly like the heap of the paper's benchmarks persists across tasks.
pub struct Machine<'m> {
    pub(crate) module: &'m Module,
    /// Simulated flat memory holding the globals.
    pub memory: Memory,
    /// Interpreter limits and engine selection.
    pub config: InterpConfig,
    /// Bytecode-engine state: cached lowered programs + reusable frame
    /// stack (untouched when running as [`EngineKind::Tree`]).
    pub(crate) vm: crate::vm::VmState,
}

/// A value plus its miss-dependence taint: `true` when the value derives
/// from a DRAM-missing load (drives the dependent-miss serialisation of the
/// timing model).
pub(crate) type Slot = (Val, bool);

struct Frame<'f> {
    func: &'f Function,
    global_addrs: Vec<u64>,
    args: Vec<Slot>,
    inst_slots: Vec<Option<Slot>>,
    param_slots: Vec<Vec<Slot>>,
}

impl<'m> Machine<'m> {
    /// Creates a machine with freshly initialised memory.
    pub fn new(module: &'m Module) -> Machine<'m> {
        Machine {
            module,
            memory: Memory::for_module(module),
            config: InterpConfig::default(),
            vm: crate::vm::VmState::default(),
        }
    }

    /// The module being executed.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Runs `func` with `args` (untainted), recording the execution into
    /// `trace` and driving `caches`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] on traps or exhausted budgets.
    pub fn run(
        &mut self,
        func: FuncId,
        args: &[Val],
        caches: &mut CachePort<'_>,
        trace: &mut PhaseTrace,
    ) -> Result<Option<Val>, InterpError> {
        if self.config.engine == EngineKind::Bytecode {
            return self.vm_run(func, args, caches, trace, None);
        }
        let mut steps_left = self.config.max_steps;
        let slots: Vec<Slot> = args.iter().map(|v| (*v, false)).collect();
        let r = self.run_frame(func, slots, caches, trace, &mut steps_left, 0, None)?;
        Ok(r.map(|(v, _)| v))
    }

    /// Like [`Machine::run`], additionally recording per-branch taken
    /// counts of the **top-level** function into `profile` (callee branches
    /// are not recorded — profile the inlined clone to see everything).
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] on traps or exhausted budgets.
    pub fn run_with_profile(
        &mut self,
        func: FuncId,
        args: &[Val],
        caches: &mut CachePort<'_>,
        trace: &mut PhaseTrace,
        profile: &mut BranchProfile,
    ) -> Result<Option<Val>, InterpError> {
        if self.config.engine == EngineKind::Bytecode {
            return self.vm_run(func, args, caches, trace, Some(profile));
        }
        let mut steps_left = self.config.max_steps;
        let slots: Vec<Slot> = args.iter().map(|v| (*v, false)).collect();
        let r = self.run_frame(func, slots, caches, trace, &mut steps_left, 0, Some(profile))?;
        Ok(r.map(|(v, _)| v))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_frame(
        &mut self,
        func_id: FuncId,
        args: Vec<Slot>,
        caches: &mut CachePort<'_>,
        trace: &mut PhaseTrace,
        steps_left: &mut u64,
        depth: usize,
        mut profile: Option<&mut BranchProfile>,
    ) -> Result<Option<Slot>, InterpError> {
        if depth > self.config.max_call_depth {
            return Err(InterpError::Trap("call depth exceeded".into()));
        }
        let func = self.module.func(func_id);
        if func.params.len() != args.len() {
            return Err(InterpError::Trap(format!(
                "function `{}` expects {} args, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let global_addrs: Vec<u64> = (0..self.module.num_globals())
            .map(|g| self.memory.global_addr(dae_ir::GlobalId(g as u32)))
            .collect();
        let mut frame = Frame {
            func,
            global_addrs,
            args,
            inst_slots: vec![None; func.num_insts()],
            param_slots: (0..func.num_blocks())
                .map(|b| vec![(Val::I(0), false); func.block(BlockId(b as u32)).params.len()])
                .collect(),
        };

        let mut block = func.entry;
        // Scratch for edge arguments, swapped (not reallocated) into the
        // destination's parameter slots on every taken edge.
        let mut incoming: Vec<Slot> = Vec::new();
        loop {
            // Execute the block body.
            for &inst in &func.block(block).insts {
                if *steps_left == 0 {
                    return Err(InterpError::StepLimit);
                }
                *steps_left -= 1;
                self.exec_inst(&mut frame, inst, caches, trace, steps_left, depth)?;
            }
            // Terminator.
            if *steps_left == 0 {
                return Err(InterpError::StepLimit);
            }
            *steps_left -= 1;
            trace.instrs += 1;
            trace.branches += 1;
            let term = func.terminator(block);
            let dest = match term {
                Terminator::Jump(d) => d,
                Terminator::Branch { cond, then_dest, else_dest } => {
                    let (c, _) = eval(&frame, *cond);
                    let taken = c.try_b()?;
                    if let Some(p) = profile.as_deref_mut() {
                        p.record(block, taken);
                    }
                    if taken {
                        then_dest
                    } else {
                        else_dest
                    }
                }
                Terminator::Ret(v) => {
                    return Ok(v.map(|v| eval(&frame, v)));
                }
            };
            // Bind edge arguments to destination parameters.
            incoming.clear();
            incoming.extend(dest.args.iter().map(|a| eval(&frame, *a)));
            std::mem::swap(&mut frame.param_slots[dest.block.0 as usize], &mut incoming);
            block = dest.block;
        }
    }

    fn exec_inst(
        &mut self,
        frame: &mut Frame<'_>,
        inst: dae_ir::InstId,
        caches: &mut CachePort<'_>,
        trace: &mut PhaseTrace,
        steps_left: &mut u64,
        depth: usize,
    ) -> Result<(), InterpError> {
        let data = frame.func.inst(inst);
        // x86 addressing-mode folding: `ptradd` (base + offset) and
        // power-of-two scale multiplies fold into the memory operand of the
        // consuming load/store/prefetch — they execute but occupy no issue
        // slot.
        let folded = match &data.kind {
            InstKind::PtrAdd { .. } => true,
            InstKind::Binary { op: BinOp::IMul, lhs, rhs } => {
                let scale = |v: &Value| matches!(v.as_i64(), Some(1) | Some(2) | Some(4) | Some(8));
                scale(lhs) || scale(rhs)
            }
            _ => false,
        };
        if folded {
            trace.addr_ops += 1;
        } else {
            trace.instrs += 1;
        }
        let cfg_extra = TimingConfig::default();
        let result: Option<Slot> = match &data.kind {
            InstKind::Binary { op, lhs, rhs } => {
                let (a, ta) = eval(frame, *lhs);
                let (b, tb) = eval(frame, *rhs);
                let taint = ta || tb;
                let v = exec_binop(*op, a, b)?;
                if op.is_float() {
                    trace.fp_ops += 1;
                }
                match op {
                    BinOp::IDiv | BinOp::IRem => trace.extra_lat_cycles += cfg_extra.idiv_cyc,
                    BinOp::FDiv => trace.extra_lat_cycles += cfg_extra.fdiv_cyc,
                    _ => {}
                }
                Some((v, taint))
            }
            InstKind::Unary { op, operand } => {
                let (a, t) = eval(frame, *operand);
                if matches!(op, UnOp::FSqrt) {
                    trace.fp_ops += 1;
                    trace.extra_lat_cycles += cfg_extra.fsqrt_cyc;
                }
                Some((exec_unop(*op, a)?, t))
            }
            InstKind::Cmp { op, lhs, rhs } => {
                let (a, ta) = eval(frame, *lhs);
                let (b, tb) = eval(frame, *rhs);
                Some((Val::B(exec_cmp(*op, a, b)?), ta || tb))
            }
            InstKind::Select { cond, then_value, else_value } => {
                let (c, tc) = eval(frame, *cond);
                let (v, tv) =
                    if c.try_b()? { eval(frame, *then_value) } else { eval(frame, *else_value) };
                Some((v, tc || tv))
            }
            InstKind::PtrAdd { base, offset } => {
                let (b, tb) = eval(frame, *base);
                let (o, to) = eval(frame, *offset);
                Some((Val::P((b.try_p()? as i64).wrapping_add(o.try_i()?) as u64), tb || to))
            }
            InstKind::Load { addr } => {
                let (a, taint) = eval(frame, *addr);
                let a = a.try_p()?;
                trace.loads += 1;
                let (level, hw_covered) = caches.core.access_demand(caches.llc, a);
                let missed = level == HitLevel::Memory;
                if missed && hw_covered {
                    // The L2 stream prefetcher fetched this line ahead of
                    // use: on-chip latency plus bandwidth, no ROB stall.
                    trace.hw_prefetch_lines += 1;
                } else {
                    trace.demand_hits[level_index(level)] += 1;
                    if missed {
                        trace
                            .demand_misses
                            .push(DemandMiss { instr_idx: trace.instrs, dependent: taint });
                    }
                }
                let v = self.memory.try_read(data.ty, a)?;
                Some((v, missed && !hw_covered))
            }
            InstKind::Store { addr, value } => {
                let (a, _) = eval(frame, *addr);
                let a = a.try_p()?;
                let (v, _) = eval(frame, *value);
                trace.stores += 1;
                let (level, writebacks) = caches.core.access_write(caches.llc, a);
                if level == HitLevel::Memory {
                    trace.store_mem_misses += 1;
                }
                trace.writeback_lines += writebacks;
                self.memory.write(a, v);
                None
            }
            InstKind::Prefetch { addr } => {
                let (a, _) = eval(frame, *addr);
                trace.prefetches += 1;
                let p = a.try_p()?;
                // A prefetch never faults: out-of-range hints are dropped,
                // exactly like `prefetcht0`.
                if (p as usize) < self.memory.size() && p >= 0x1000 {
                    let level = caches.core.access(caches.llc, p);
                    trace.prefetch_hits[level_index(level)] += 1;
                }
                None
            }
            InstKind::Call { callee, args } => {
                let slots: Vec<Slot> = args.iter().map(|a| eval(frame, *a)).collect();
                self.run_frame(*callee, slots, caches, trace, steps_left, depth + 1, None)?
            }
        };
        if let Some(slot) = result {
            frame.inst_slots[inst.0 as usize] = Some(slot);
        }
        Ok(())
    }
}

fn eval(frame: &Frame<'_>, v: Value) -> Slot {
    match v {
        Value::Inst(id) => frame.inst_slots[id.0 as usize].expect("use before def"),
        Value::BlockParam { block, index } => frame.param_slots[block.0 as usize][index as usize],
        Value::Arg(i) => frame.args[i as usize],
        Value::ConstI64(c) => (Val::I(c), false),
        Value::ConstF64(bits) => (Val::F(f64::from_bits(bits)), false),
        Value::ConstBool(b) => (Val::B(b), false),
        Value::Global(g) => (Val::P(frame.global_addrs[g.0 as usize]), false),
    }
}

#[inline]
pub(crate) fn exec_binop(op: BinOp, a: Val, b: Val) -> Result<Val, InterpError> {
    Ok(match op {
        BinOp::IAdd => Val::I(a.try_i()?.wrapping_add(b.try_i()?)),
        BinOp::ISub => Val::I(a.try_i()?.wrapping_sub(b.try_i()?)),
        BinOp::IMul => Val::I(a.try_i()?.wrapping_mul(b.try_i()?)),
        BinOp::IDiv => {
            let d = b.try_i()?;
            if d == 0 {
                return Err(InterpError::Trap("integer division by zero".into()));
            }
            Val::I(a.try_i()?.wrapping_div(d))
        }
        BinOp::IRem => {
            let d = b.try_i()?;
            if d == 0 {
                return Err(InterpError::Trap("integer remainder by zero".into()));
            }
            Val::I(a.try_i()?.wrapping_rem(d))
        }
        BinOp::And => Val::I(a.try_i()? & b.try_i()?),
        BinOp::Or => Val::I(a.try_i()? | b.try_i()?),
        BinOp::Xor => Val::I(a.try_i()? ^ b.try_i()?),
        BinOp::Shl => Val::I(a.try_i()?.wrapping_shl(b.try_i()? as u32)),
        BinOp::AShr => Val::I(a.try_i()?.wrapping_shr(b.try_i()? as u32)),
        BinOp::FAdd => Val::F(a.try_f()? + b.try_f()?),
        BinOp::FSub => Val::F(a.try_f()? - b.try_f()?),
        BinOp::FMul => Val::F(a.try_f()? * b.try_f()?),
        BinOp::FDiv => Val::F(a.try_f()? / b.try_f()?),
        BinOp::FMin => Val::F(a.try_f()?.min(b.try_f()?)),
        BinOp::FMax => Val::F(a.try_f()?.max(b.try_f()?)),
    })
}

#[inline]
pub(crate) fn exec_unop(op: UnOp, a: Val) -> Result<Val, InterpError> {
    Ok(match op {
        UnOp::INeg => Val::I(a.try_i()?.wrapping_neg()),
        UnOp::FNeg => Val::F(-a.try_f()?),
        UnOp::FSqrt => Val::F(a.try_f()?.sqrt()),
        UnOp::IToF => Val::F(a.try_i()? as f64),
        UnOp::FToI => Val::I(a.try_f()? as i64),
        UnOp::PtrToInt => Val::I(a.try_p()? as i64),
        UnOp::IntToPtr => Val::P(a.try_i()? as u64),
        UnOp::Not => Val::B(!a.try_b()?),
    })
}

#[inline]
pub(crate) fn exec_cmp(op: CmpOp, a: Val, b: Val) -> Result<bool, InterpError> {
    Ok(match (a, b) {
        (Val::I(x), Val::I(y)) => cmp_ord(op, x.cmp(&y)),
        (Val::P(x), Val::P(y)) => cmp_ord(op, x.cmp(&y)),
        (Val::B(x), Val::B(y)) => cmp_ord(op, x.cmp(&y)),
        (Val::F(x), Val::F(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
        (x, y) => {
            return Err(InterpError::TypeMismatch { expected: x.kind(), got: y.kind() });
        }
    })
}

fn cmp_ord(op: CmpOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => o == Equal,
        CmpOp::Ne => o != Equal,
        CmpOp::Lt => o == Less,
        CmpOp::Le => o != Greater,
        CmpOp::Gt => o == Greater,
        CmpOp::Ge => o != Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Module, Type};
    use dae_mem::HierarchyConfig;

    fn run_task<'a>(
        module: &'a Module,
        name: &str,
        args: &[Val],
    ) -> (Option<Val>, PhaseTrace, Machine<'a>) {
        let cfg = HierarchyConfig::default();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        let mut machine = Machine::new(module);
        let mut trace = PhaseTrace::default();
        let f = module.func_by_name(name).expect("function");
        let r = machine
            .run(f, args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut trace)
            .expect("run ok");
        (r, trace, machine)
    }

    #[test]
    fn computes_loop_sum() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("sum", vec![Type::I64], Type::I64);
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::i64(0)],
            |b, i, c| vec![b.iadd(c[0], i)],
        );
        b.ret(Some(out[0]));
        m.add_function(b.finish());
        let (r, trace, _) = run_task(&m, "sum", &[Val::I(10)]);
        assert_eq!(r, Some(Val::I(45)));
        assert!(trace.instrs > 30);
        assert!(trace.branches >= 11);
    }

    #[test]
    fn loads_and_stores_memory() {
        let mut m = Module::new();
        let g = m.add_global("a", Type::F64, 16);
        let mut b = FunctionBuilder::new("fill", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let addr = b.elem_addr(Value::Global(g), i, Type::F64);
            let fi = b.itof(i);
            b.store(addr, fi);
        });
        b.ret(None);
        m.add_function(b.finish());
        let (_, trace, machine) = run_task(&m, "fill", &[Val::I(16)]);
        assert_eq!(trace.stores, 16);
        let base = machine.memory.global_addr(g);
        assert_eq!(machine.memory.read(Type::F64, base + 8 * 5), Val::F(5.0));
    }

    #[test]
    fn cold_loads_miss_then_hit() {
        let mut m = Module::new();
        let g = m.add_global("a", Type::F64, 64);
        let mut b = FunctionBuilder::new("touch", vec![], Type::Void);
        b.counted_loop(Value::i64(0), Value::i64(64), Value::i64(1), |b, i| {
            let addr = b.elem_addr(Value::Global(g), i, Type::F64);
            let _ = b.load(Type::F64, addr);
        });
        b.ret(None);
        m.add_function(b.finish());
        let (_, trace, _) = run_task(&m, "touch", &[]);
        // 64 f64s = 8 lines: one cold DRAM miss, the remaining 7 sequential
        // lines are covered by the hardware stream prefetcher, 56 L1 hits.
        assert_eq!(trace.demand_hits[3], 1);
        assert_eq!(trace.hw_prefetch_lines, 7);
        assert_eq!(trace.demand_hits[0], 56);
        assert_eq!(trace.demand_misses.len(), 1);
        assert!(
            trace.demand_misses.iter().all(|d| !d.dependent),
            "streaming misses are independent"
        );
    }

    #[test]
    fn pointer_chase_misses_are_dependent() {
        // A linked ring spanning many lines: node i at a[i*16], next pointer
        // stored in the node. Every hop loads the next address.
        let mut m = Module::new();
        let g = m.add_global("nodes", Type::I64, 16 * 64);
        let mut b = FunctionBuilder::new("chase", vec![Type::Ptr, Type::I64], Type::Ptr);
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(1),
            Value::i64(1),
            vec![Value::Arg(0)],
            |b, _, c| vec![b.load(Type::Ptr, c[0])],
        );
        b.ret(Some(out[0]));
        m.add_function(b.finish());

        let cfg = HierarchyConfig::default();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        let mut machine = Machine::new(&m);
        // Build the chain in memory: node k -> node (k+7)%64 (stride breaks locality)
        let base = machine.memory.global_addr(g);
        for k in 0..64u64 {
            let next = (k + 7) % 64;
            machine.memory.write_u64(base + k * 128, base + next * 128);
        }
        let mut trace = PhaseTrace::default();
        let f = m.func_by_name("chase").unwrap();
        let r = machine
            .run(
                f,
                &[Val::P(base), Val::I(32)],
                &mut CachePort { core: &mut core, llc: &mut llc },
                &mut trace,
            )
            .unwrap();
        assert!(matches!(r, Some(Val::P(_))));
        // After the first (cold, independent) miss every subsequent miss's
        // address comes from a missing load: dependent.
        let dependent = trace.demand_misses.iter().filter(|d| d.dependent).count();
        assert!(
            dependent >= trace.demand_misses.len() - 1,
            "{dependent} of {}",
            trace.demand_misses.len()
        );
        assert!(trace.demand_misses.len() >= 30);
    }

    #[test]
    fn prefetch_out_of_range_is_dropped() {
        let mut m = Module::new();
        let _g = m.add_global("a", Type::F64, 8);
        let mut b = FunctionBuilder::new("p", vec![], Type::Void);
        let wild = b.unary(UnOp::IntToPtr, Value::i64(0x7fff_ffff));
        b.prefetch(wild);
        b.ret(None);
        m.add_function(b.finish());
        let (_, trace, _) = run_task(&m, "p", &[]);
        assert_eq!(trace.prefetches, 1);
        assert_eq!(trace.prefetch_hits.iter().sum::<u64>(), 0);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("d", vec![Type::I64], Type::I64);
        let q = b.idiv(1i64, Value::Arg(0));
        b.ret(Some(q));
        m.add_function(b.finish());
        let cfg = HierarchyConfig::default();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        let mut machine = Machine::new(&m);
        let mut trace = PhaseTrace::default();
        let f = m.func_by_name("d").unwrap();
        let e = machine
            .run(f, &[Val::I(0)], &mut CachePort { core: &mut core, llc: &mut llc }, &mut trace)
            .unwrap_err();
        assert!(matches!(e, InterpError::Trap(_)));
    }

    #[test]
    fn malformed_module_errors_instead_of_aborting() {
        // An integer add over a float operand: rejected by the verifier,
        // but a module that skips verification must still fail gracefully.
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("bad", vec![], Type::I64);
        let v = b.iadd(Value::f64(1.5), Value::i64(2));
        b.ret(Some(v));
        m.add_function(b.finish());
        let cfg = HierarchyConfig::default();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        let mut machine = Machine::new(&m);
        let mut trace = PhaseTrace::default();
        let f = m.func_by_name("bad").unwrap();
        let e = machine
            .run(f, &[], &mut CachePort { core: &mut core, llc: &mut llc }, &mut trace)
            .unwrap_err();
        assert_eq!(e, InterpError::TypeMismatch { expected: "i64", got: "f64" });

        // A void-typed load: reported as LoadVoid, not a process abort.
        let mut m2 = Module::new();
        let g = m2.add_global("a", Type::F64, 1);
        let mut b2 = FunctionBuilder::new("voidload", vec![], Type::Void);
        let addr = b2.elem_addr(Value::Global(g), Value::i64(0), Type::F64);
        let _ = b2.load(Type::Void, addr);
        b2.ret(None);
        m2.add_function(b2.finish());
        let mut machine2 = Machine::new(&m2);
        let mut trace2 = PhaseTrace::default();
        let f2 = m2.func_by_name("voidload").unwrap();
        let e2 = machine2
            .run(f2, &[], &mut CachePort { core: &mut core, llc: &mut llc }, &mut trace2)
            .unwrap_err();
        assert_eq!(e2, InterpError::LoadVoid);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("inf", vec![], Type::Void);
        let bb = b.create_block();
        b.jump(bb, vec![]);
        b.switch_to(bb);
        b.jump(bb, vec![]);
        let f = {
            // finish() requires current block terminated — it is (jump).
            b.finish()
        };
        m.add_function(f);
        let cfg = HierarchyConfig::default();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        let mut machine = Machine::new(&m);
        machine.config.max_steps = 10_000;
        let mut trace = PhaseTrace::default();
        let f = m.func_by_name("inf").unwrap();
        let e = machine
            .run(f, &[], &mut CachePort { core: &mut core, llc: &mut llc }, &mut trace)
            .unwrap_err();
        assert_eq!(e, InterpError::StepLimit);
    }

    #[test]
    fn calls_execute_callee() {
        let mut m = Module::new();
        let mut cb = FunctionBuilder::new("sq", vec![Type::I64], Type::I64);
        let v = cb.imul(Value::Arg(0), Value::Arg(0));
        cb.ret(Some(v));
        let callee = m.add_function(cb.finish());
        let mut b = FunctionBuilder::new("top", vec![Type::I64], Type::I64);
        let c = b.call(callee, vec![Value::Arg(0)], Type::I64).unwrap();
        let r = b.iadd(c, 1i64);
        b.ret(Some(r));
        m.add_function(b.finish());
        let (r, _, _) = run_task(&m, "top", &[Val::I(6)]);
        assert_eq!(r, Some(Val::I(37)));
    }

    #[test]
    fn access_then_execute_warms_cache() {
        // The DAE mechanism end to end at the interpreter level.
        let mut m = Module::new();
        let g = m.add_global("a", Type::F64, 512);
        // access: prefetch every line
        let mut ab = FunctionBuilder::new("access", vec![], Type::Void);
        ab.counted_loop(Value::i64(0), Value::i64(64), Value::i64(1), |b, i| {
            let off = b.imul(i, 64i64);
            let p = b.ptr_add(Value::Global(g), off);
            b.prefetch(p);
        });
        ab.ret(None);
        m.add_function(ab.finish());
        // execute: load every element
        let mut eb = FunctionBuilder::new("execute", vec![], Type::Void);
        eb.counted_loop(Value::i64(0), Value::i64(512), Value::i64(1), |b, i| {
            let addr = b.elem_addr(Value::Global(g), i, Type::F64);
            let _ = b.load(Type::F64, addr);
        });
        eb.ret(None);
        m.add_function(eb.finish());

        let cfg = HierarchyConfig::default();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        let mut machine = Machine::new(&m);
        let access = m.func_by_name("access").unwrap();
        let execute = m.func_by_name("execute").unwrap();

        let mut access_trace = PhaseTrace::default();
        machine
            .run(access, &[], &mut CachePort { core: &mut core, llc: &mut llc }, &mut access_trace)
            .unwrap();
        let mut exec_trace = PhaseTrace::default();
        machine
            .run(execute, &[], &mut CachePort { core: &mut core, llc: &mut llc }, &mut exec_trace)
            .unwrap();

        assert_eq!(access_trace.prefetch_hits[3], 64, "cold prefetches go to DRAM");
        assert_eq!(exec_trace.demand_hits[3], 0, "execute phase fully warmed");
        assert_eq!(exec_trace.demand_hits[0], 512);

        // And the timing asymmetry: the access phase is memory-bound, the
        // warmed execute phase is compute-bound.
        let tc = TimingConfig::default();
        assert!(access_trace.memory_bound_fraction(1.6e9, &tc) > 0.5);
        assert!(exec_trace.memory_bound_fraction(3.4e9, &tc) < 0.05);
    }
}
