//! # dae-sim — IR interpreter and out-of-order interval timing model
//!
//! The "hardware" of the CGO 2014 DAE reproduction. The paper measures on a
//! quad-core Sandybridge; this crate substitutes a deterministic simulator
//! with the one property the paper's argument rests on: **core time scales
//! with frequency, memory time does not**.
//!
//! * [`memory::Memory`] — flat byte-addressed memory holding the module's
//!   globals (64-byte aligned),
//! * [`interp::Machine`] — executes IR functions, drives a
//!   [`dae_mem::CoreCaches`]/[`dae_mem::SharedLlc`] pair, and records a
//!   [`timing::PhaseTrace`],
//! * [`timing::PhaseTrace`] — evaluates phase time/IPC at any frequency:
//!   issue-limited core cycles, dependence-aware DRAM miss overlap (MLP),
//!   and a bandwidth floor for non-blocking prefetch traffic.
//!
//! One execution yields a trace evaluable at *every* frequency — the
//! simulator's deterministic analogue of the paper's §3.1 methodology of
//! profiling each application at all available frequencies.
//!
//! # Examples
//!
//! ```
//! use dae_ir::{FunctionBuilder, Module, Type, Value};
//! use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
//! use dae_sim::{CachePort, Machine, PhaseTrace, TimingConfig, Val};
//!
//! let mut module = Module::new();
//! let a = module.add_global("a", Type::F64, 1024);
//! let mut b = FunctionBuilder::new("touch", vec![Type::I64], Type::Void);
//! b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
//!     let addr = b.elem_addr(Value::Global(a), i, Type::F64);
//!     let _ = b.load(Type::F64, addr);
//! });
//! b.ret(None);
//! module.add_function(b.finish());
//!
//! let cfg = HierarchyConfig::default();
//! let mut llc = SharedLlc::new(cfg.llc);
//! let mut core = CoreCaches::new(&cfg);
//! let mut machine = Machine::new(&module);
//! let mut trace = PhaseTrace::default();
//! let f = module.func_by_name("touch").unwrap();
//! machine.run(f, &[Val::I(1024)], &mut CachePort { core: &mut core, llc: &mut llc }, &mut trace)?;
//!
//! let t = TimingConfig::default();
//! assert!(trace.time_s(3.4e9, &t) > 0.0);
//! # Ok::<(), dae_sim::InterpError>(())
//! ```

#![warn(missing_docs)]

pub mod interp;
pub mod memory;
pub mod timing;
pub mod vm;

pub use interp::{BranchProfile, CachePort, InterpConfig, InterpError, Machine};
pub use memory::{Memory, TypeError, Val};
pub use timing::{DemandMiss, PhaseTrace, TimingConfig};
pub use vm::{EngineKind, LowerSpan};
