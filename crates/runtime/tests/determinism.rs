//! Bit-level determinism of the scheduler across the whole policy matrix.
//!
//! A property test in the randomised-but-reproducible style: a seeded
//! [`SplitMix64`] generates workload shapes (task counts, chunk sizes,
//! coupled/decoupled mixes, core counts), and every generated case must
//! produce **bit-identical** [`RunReport`]s when run twice — including the
//! online-governed policies, whose exploration is driven by its own fixed
//! seed. This is the invariant that makes `BENCH_*.json` files and traces
//! diffable across machines.

use dae_governor::{GovernorKind, SplitMix64};
use dae_ir::{FuncId, FunctionBuilder, Module, Type, Value};
use dae_power::FreqId;
use dae_runtime::{run_workload, FreqPolicy, RunReport, RuntimeConfig, TaskInstance};
use dae_sim::Val;

/// One streaming task (with a hand-built access phase) over `a[0..1<<17]`.
fn stream_module(chunk: i64) -> (Module, FuncId, FuncId) {
    let mut m = Module::new();
    let a = m.add_global("a", Type::F64, 1 << 17);

    let mut b = FunctionBuilder::new("stream", vec![Type::I64], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::i64(chunk), Value::i64(1), |b, i| {
        let idx = b.iadd(Value::Arg(0), i);
        let p = b.elem_addr(Value::Global(a), idx, Type::F64);
        let v = b.load(Type::F64, p);
        let w = b.fadd(v, 1.5f64);
        b.store(p, w);
    });
    b.ret(None);
    let exec = m.add_function(b.finish());

    let mut b = FunctionBuilder::new("stream__access", vec![Type::I64], Type::Void);
    b.counted_loop(Value::i64(0), Value::i64(chunk), Value::i64(8), |b, i| {
        let idx = b.iadd(Value::Arg(0), i);
        let p = b.elem_addr(Value::Global(a), idx, Type::F64);
        b.prefetch(p);
    });
    b.ret(None);
    let access = m.add_function(b.finish());
    (m, exec, access)
}

/// Every field of the two reports, compared at the bit level.
fn assert_bit_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.time_s.to_bits(), b.time_s.to_bits(), "{what}: time_s");
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits(), "{what}: energy_j");
    assert_eq!(a.tasks, b.tasks, "{what}: tasks");
    for (k, x, y) in [
        ("access_s", a.breakdown.access_s, b.breakdown.access_s),
        ("execute_s", a.breakdown.execute_s, b.breakdown.execute_s),
        ("overhead_s", a.breakdown.overhead_s, b.breakdown.overhead_s),
        ("idle_s", a.breakdown.idle_s, b.breakdown.idle_s),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: breakdown.{k}");
    }
    assert_eq!(a.access_trace, b.access_trace, "{what}: access_trace");
    assert_eq!(a.execute_trace, b.execute_trace, "{what}: execute_trace");
    // The serialised form covers the governor section (and every derived
    // metric) in one comparison.
    assert_eq!(a.to_json_string(), b.to_json_string(), "{what}: json");
}

fn policies(seed: u64) -> Vec<FreqPolicy> {
    vec![
        FreqPolicy::CoupledMax,
        FreqPolicy::CoupledOptimal,
        FreqPolicy::DaeMinMax,
        FreqPolicy::DaeOptimal,
        FreqPolicy::DaePhases { access: FreqId(0), execute: FreqId(3) },
        FreqPolicy::Governed(GovernorKind::Heuristic),
        FreqPolicy::Governed(GovernorKind::Bandit { seed }),
    ]
}

#[test]
fn same_inputs_give_bit_identical_reports_across_the_policy_matrix() {
    let mut rng = SplitMix64::new(0x5eed_0001);
    for case in 0..8 {
        // Random workload shape, reproducible from the seed above.
        let chunk = 256 << rng.next_below(3); // 256, 512 or 1024
        let n_tasks = 8 + rng.next_below(25) as usize; // 8..=32
        let coupled_every = 2 + rng.next_below(3); // every 2nd..4th coupled
        let cores = 1 + rng.next_below(4) as usize; // 1..=4
        let gov_seed = rng.next_u64();

        let (m, exec, access) = stream_module(chunk);
        let tasks: Vec<TaskInstance> = (0..n_tasks)
            .map(|k| {
                let arg = vec![Val::I(k as i64 * chunk)];
                if (k as u64).is_multiple_of(coupled_every) {
                    TaskInstance::coupled(exec, arg)
                } else {
                    TaskInstance::decoupled(exec, access, arg)
                }
            })
            .collect();

        let mut base = RuntimeConfig::paper_default();
        base.cores = cores;
        for policy in policies(gov_seed) {
            let cfg = base.clone().with_policy(policy);
            let r1 = run_workload(&m, &tasks, &cfg).unwrap();
            let r2 = run_workload(&m, &tasks, &cfg).unwrap();
            let what = format!(
                "case {case} (chunk {chunk}, {n_tasks} tasks, {cores} cores, {})",
                policy.label(&cfg.table)
            );
            assert_bit_identical(&r1, &r2, &what);
        }
    }
}

#[test]
fn bandit_seed_changes_exploration_but_stays_deterministic() {
    let (m, exec, access) = stream_module(512);
    let tasks: Vec<TaskInstance> =
        (0..24).map(|k| TaskInstance::decoupled(exec, access, vec![Val::I(k * 512)])).collect();
    let base = RuntimeConfig::paper_default();

    let run = |seed: u64| {
        let cfg = base.clone().with_policy(FreqPolicy::Governed(GovernorKind::Bandit { seed }));
        run_workload(&m, &tasks, &cfg).unwrap()
    };
    // Same seed twice: identical. (The cross-seed results may or may not
    // differ — exploration order is seed-dependent but the workload is
    // small — so only the reproducibility direction is asserted.)
    assert_bit_identical(&run(7), &run(7), "seed 7");
    assert_bit_identical(&run(8), &run(8), "seed 8");
}
