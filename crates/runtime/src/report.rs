//! Run reports: time, energy, EDP and the O.S.I. breakdown of Figure 4.
//!
//! Reports serialise to JSON ([`RunReport::to_json`]) independently of any
//! trace sink, so `BENCH_*.json` trajectory files and scripted consumers
//! never have to parse the aligned text tables.

use dae_sim::PhaseTrace;
use dae_trace::json::JsonValue;

/// Aggregated timing of one run, split the way Figure 4 stacks it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Total time spent in access ("Prefetch") phases, across cores.
    pub access_s: f64,
    /// Total time spent in execute ("Task") phases, across cores.
    pub execute_s: f64,
    /// Overhead: DVFS transitions plus per-task runtime cost.
    pub overhead_s: f64,
    /// Idle core-time (makespan × cores − busy time).
    pub idle_s: f64,
}

impl Breakdown {
    /// Overhead + idle, the paper's "O.S.I." bar.
    pub fn osi_s(&self) -> f64 {
        self.overhead_s + self.idle_s
    }

    /// Machine-readable form: one key per bar segment plus the derived
    /// `osi_s`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("access_s", self.access_s.into()),
            ("execute_s", self.execute_s.into()),
            ("overhead_s", self.overhead_s.into()),
            ("idle_s", self.idle_s.into()),
            ("osi_s", self.osi_s().into()),
        ])
    }
}

/// What an online governor learned about one task class during a run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassReport {
    /// Class label: `<function name>#<signature hex>`.
    pub class: String,
    /// Completed-task observations of the class.
    pub observations: u64,
    /// Decisions that were exploratory.
    pub explored: u64,
    /// True once the class's decisions stabilised.
    pub converged: bool,
    /// True when the safety guard pinned the class to min/max.
    pub guarded: bool,
    /// The class's current access-phase frequency, in GHz.
    pub access_ghz: f64,
    /// The class's current execute-phase frequency, in GHz.
    pub execute_ghz: f64,
    /// Running mean of the class's per-task EDP.
    pub mean_task_edp: f64,
}

impl ClassReport {
    /// Machine-readable form, one key per field.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("class", self.class.as_str().into()),
            ("observations", self.observations.into()),
            ("explored", self.explored.into()),
            ("converged", self.converged.into()),
            ("guarded", self.guarded.into()),
            ("access_ghz", self.access_ghz.into()),
            ("execute_ghz", self.execute_ghz.into()),
            ("mean_task_edp", self.mean_task_edp.into()),
        ])
    }
}

/// End-of-run snapshot of an online governor: which frequencies each task
/// class converged to. Present in a [`RunReport`] only for governed runs,
/// so traces and bench JSON are self-describing.
#[derive(Clone, Debug, PartialEq)]
pub struct GovernorReport {
    /// Name of the governor ("static", "heuristic", "bandit").
    pub governor: String,
    /// Per-class outcomes, in deterministic class order.
    pub classes: Vec<ClassReport>,
}

impl GovernorReport {
    /// Machine-readable form: the governor name plus one entry per class.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("governor", self.governor.as_str().into()),
            ("classes", JsonValue::Arr(self.classes.iter().map(ClassReport::to_json).collect())),
        ])
    }
}

/// How the module's tasks were compiled, when compilation went through the
/// driver. Only deterministic counts live here — never wall-clock times or
/// the job count — so reports stay byte-identical across `--jobs` settings
/// and cold/warm caches compare on content alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Tasks the driver compiled (or replayed).
    pub tasks: usize,
    /// Tasks with a generated access function.
    pub generated: usize,
    /// Tasks refused (they run coupled).
    pub refused: usize,
    /// Tasks answered from the incremental cache.
    pub from_cache: usize,
    /// Cache lookups answered from the in-memory tier.
    pub mem_hits: u64,
    /// Cache lookups answered from the on-disk tier.
    pub disk_hits: u64,
    /// Cache lookups answered by neither tier.
    pub misses: u64,
    /// Artifacts evicted from the in-memory tier.
    pub evictions: u64,
}

impl CompileStats {
    /// Total cache hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Machine-readable form, one key per field plus derived `hits`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("tasks", self.tasks.into()),
            ("generated", self.generated.into()),
            ("refused", self.refused.into()),
            ("from_cache", self.from_cache.into()),
            ("mem_hits", self.mem_hits.into()),
            ("disk_hits", self.disk_hits.into()),
            ("misses", self.misses.into()),
            ("evictions", self.evictions.into()),
            ("hits", self.hits().into()),
        ])
    }
}

/// The result of one workload run under one configuration.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Makespan in seconds (the paper's Time).
    pub time_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Number of task instances executed.
    pub tasks: usize,
    /// Core-time breakdown.
    pub breakdown: Breakdown,
    /// Merged trace of all access phases.
    pub access_trace: PhaseTrace,
    /// Merged trace of all execute phases.
    pub execute_trace: PhaseTrace,
    /// The online governor's learned per-class state (governed runs only).
    pub governor: Option<GovernorReport>,
    /// Compilation statistics (driver-compiled runs only).
    pub compile: Option<CompileStats>,
}

impl RunReport {
    /// Energy-delay product `T² · P = T · E`.
    pub fn edp(&self) -> f64 {
        self.time_s * self.energy_j
    }

    /// Average access-phase duration in microseconds (Table 1's `TA`).
    pub fn ta_us(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.breakdown.access_s / self.tasks as f64 * 1e6
        }
    }

    /// Fraction of busy time spent in the access phase, in percent
    /// (Table 1's `TA%`).
    pub fn ta_percent(&self) -> f64 {
        let busy = self.breakdown.access_s + self.breakdown.execute_s;
        if busy == 0.0 {
            0.0
        } else {
            self.breakdown.access_s / busy * 100.0
        }
    }

    /// Machine-readable form: headline metrics, the breakdown, the Table 1
    /// derivatives and both merged phase traces.
    pub fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::obj([
            ("time_s", self.time_s.into()),
            ("energy_j", self.energy_j.into()),
            ("edp", self.edp().into()),
            ("tasks", self.tasks.into()),
            ("ta_us", self.ta_us().into()),
            ("ta_percent", self.ta_percent().into()),
            ("breakdown", self.breakdown.to_json()),
            ("access_trace", self.access_trace.to_json()),
            ("execute_trace", self.execute_trace.to_json()),
        ]);
        if let (JsonValue::Obj(pairs), Some(g)) = (&mut v, &self.governor) {
            pairs.push(("governor".to_string(), g.to_json()));
        }
        if let (JsonValue::Obj(pairs), Some(c)) = (&mut v, &self.compile) {
            pairs.push(("compile".to_string(), c.to_json()));
        }
        v
    }

    /// [`RunReport::to_json`] rendered as a compact string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            time_s: 2.0,
            energy_j: 10.0,
            tasks: 4,
            breakdown: Breakdown { access_s: 0.4, execute_s: 1.6, overhead_s: 0.1, idle_s: 0.3 },
            access_trace: PhaseTrace::default(),
            execute_trace: PhaseTrace::default(),
            governor: None,
            compile: None,
        }
    }

    #[test]
    fn edp_is_time_times_energy() {
        assert_eq!(report().edp(), 20.0);
    }

    #[test]
    fn table1_metrics() {
        let r = report();
        assert!((r.ta_us() - 0.1e6).abs() < 1e-9);
        assert!((r.ta_percent() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn osi_combines_overhead_and_idle() {
        assert!((report().breakdown.osi_s() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn report_serialises_to_parseable_json() {
        let r = report();
        let text = r.to_json_string();
        let v = dae_trace::json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("time_s").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("edp").unwrap().as_f64(), Some(20.0));
        let b = v.get("breakdown").unwrap();
        assert_eq!(b.get("execute_s").unwrap().as_f64(), Some(1.6));
        assert!((b.get("osi_s").unwrap().as_f64().unwrap() - 0.4).abs() < 1e-12);
        assert_eq!(v.get("execute_trace").unwrap().get("instrs").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn governor_section_appears_only_when_present() {
        let mut r = report();
        let text = r.to_json_string();
        assert!(dae_trace::json::parse(&text).unwrap().get("governor").is_none());
        r.governor = Some(GovernorReport {
            governor: "bandit".to_string(),
            classes: vec![ClassReport {
                class: "stream#00aa".to_string(),
                observations: 12,
                explored: 6,
                converged: true,
                guarded: false,
                access_ghz: 1.6,
                execute_ghz: 3.4,
                mean_task_edp: 1.5e-9,
            }],
        });
        let v = dae_trace::json::parse(&r.to_json_string()).unwrap();
        let g = v.get("governor").expect("governor section");
        assert_eq!(g.get("governor").unwrap().as_str(), Some("bandit"));
        let classes = g.get("classes").unwrap().as_arr().unwrap();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].get("class").unwrap().as_str(), Some("stream#00aa"));
        assert_eq!(classes[0].get("execute_ghz").unwrap().as_f64(), Some(3.4));
        assert_eq!(classes[0].get("converged").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn compile_section_appears_only_when_present() {
        let mut r = report();
        assert!(dae_trace::json::parse(&r.to_json_string()).unwrap().get("compile").is_none());
        r.compile = Some(CompileStats {
            tasks: 7,
            generated: 6,
            refused: 1,
            from_cache: 4,
            mem_hits: 3,
            disk_hits: 1,
            misses: 3,
            evictions: 0,
        });
        let v = dae_trace::json::parse(&r.to_json_string()).unwrap();
        let c = v.get("compile").expect("compile section");
        assert_eq!(c.get("tasks").unwrap().as_f64(), Some(7.0));
        assert_eq!(c.get("from_cache").unwrap().as_f64(), Some(4.0));
        assert_eq!(c.get("hits").unwrap().as_f64(), Some(4.0));
        assert_eq!(c.get("misses").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn zero_task_report_is_safe() {
        let mut r = report();
        r.tasks = 0;
        r.breakdown = Breakdown::default();
        assert_eq!(r.ta_us(), 0.0);
        assert_eq!(r.ta_percent(), 0.0);
    }
}
