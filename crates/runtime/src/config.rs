//! Runtime configuration and frequency policies.

use dae_governor::GovernorKind;
use dae_mem::HierarchyConfig;
use dae_power::{DvfsConfig, DvfsTable, FreqId, PowerModel};
use dae_sim::{EngineKind, TimingConfig};

/// How the runtime picks frequencies for task phases (§3.1 and §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FreqPolicy {
    /// Coupled execution, everything at fmax (the normalisation baseline).
    CoupledMax,
    /// Coupled execution at a fixed frequency.
    CoupledFixed(FreqId),
    /// Coupled execution, per-task exhaustive optimal-EDP frequency
    /// ("CAE (Optimal f.)").
    CoupledOptimal,
    /// DAE: access at fmin, execute at fmax ("Min/Max f.").
    DaeMinMax,
    /// DAE: per-phase exhaustive optimal-EDP frequency ("Optimal f.").
    DaeOptimal,
    /// DAE with explicit per-phase frequencies (used by the Figure 4
    /// sweeps: access pinned, execute varied).
    DaePhases {
        /// Frequency of the access phase.
        access: FreqId,
        /// Frequency of the execute phase.
        execute: FreqId,
    },
    /// DAE with an online governor choosing per-phase frequencies from
    /// runtime feedback (`dae-governor`): the realistic counterpart of the
    /// [`FreqPolicy::DaeOptimal`] oracle.
    Governed(GovernorKind),
}

impl FreqPolicy {
    /// True for policies that run the access phase before the execute
    /// phase.
    pub fn is_decoupled(self) -> bool {
        matches!(
            self,
            FreqPolicy::DaeMinMax
                | FreqPolicy::DaeOptimal
                | FreqPolicy::DaePhases { .. }
                | FreqPolicy::Governed(_)
        )
    }

    /// Parses a policy spec as accepted by `daec --policy`. Frequencies
    /// are given in GHz and snapped to the nearest point of `table`.
    ///
    /// Accepted forms: `coupled-max`, `coupled-fixed:<ghz>`,
    /// `coupled-optimal`, `dae-minmax`, `dae-optimal`,
    /// `dae-phases:<access_ghz>,<execute_ghz>`,
    /// `governed[:heuristic|bandit[:<seed>]]`.
    pub fn parse(spec: &str, table: &DvfsTable) -> Result<FreqPolicy, String> {
        let ghz = |s: &str| -> Result<FreqId, String> {
            s.parse::<f64>().map(|g| table.nearest(g)).map_err(|e| format!("bad GHz `{s}`: {e}"))
        };
        match spec {
            "coupled-max" => Ok(FreqPolicy::CoupledMax),
            "coupled-optimal" => Ok(FreqPolicy::CoupledOptimal),
            "dae-minmax" => Ok(FreqPolicy::DaeMinMax),
            "dae-optimal" => Ok(FreqPolicy::DaeOptimal),
            "governed" => Ok(FreqPolicy::Governed(GovernorKind::Heuristic)),
            other => {
                if let Some(f) = other.strip_prefix("coupled-fixed:") {
                    Ok(FreqPolicy::CoupledFixed(ghz(f)?))
                } else if let Some(fs) = other.strip_prefix("dae-phases:") {
                    let (a, e) = fs.split_once(',').ok_or_else(|| {
                        format!("dae-phases needs <access>,<execute>, got `{fs}`")
                    })?;
                    Ok(FreqPolicy::DaePhases { access: ghz(a)?, execute: ghz(e)? })
                } else if let Some(g) = other.strip_prefix("governed:") {
                    Ok(FreqPolicy::Governed(GovernorKind::parse(g)?))
                } else {
                    Err(format!("unknown policy `{other}` (try `--policy help`)"))
                }
            }
        }
    }

    /// Canonical spec string; `FreqPolicy::parse(&p.label(t), t)`
    /// round-trips for every variant.
    pub fn label(self, table: &DvfsTable) -> String {
        match self {
            FreqPolicy::CoupledMax => "coupled-max".to_string(),
            FreqPolicy::CoupledFixed(f) => format!("coupled-fixed:{}", table.point(f).ghz),
            FreqPolicy::CoupledOptimal => "coupled-optimal".to_string(),
            FreqPolicy::DaeMinMax => "dae-minmax".to_string(),
            FreqPolicy::DaeOptimal => "dae-optimal".to_string(),
            FreqPolicy::DaePhases { access, execute } => {
                format!("dae-phases:{},{}", table.point(access).ghz, table.point(execute).ghz)
            }
            FreqPolicy::Governed(kind) => format!("governed:{}", kind.label()),
        }
    }

    /// The `--policy help` listing: one line per accepted spec.
    pub fn help() -> &'static str {
        "policies (for --policy):\n\
         \x20 coupled-max                     coupled execution, everything at fmax (baseline)\n\
         \x20 coupled-fixed:<ghz>             coupled execution at a fixed frequency\n\
         \x20 coupled-optimal                 coupled, per-task exhaustive optimal-EDP frequency\n\
         \x20 dae-minmax                      DAE: access at fmin, execute at fmax\n\
         \x20 dae-optimal                     DAE: per-phase exhaustive optimal-EDP (oracle)\n\
         \x20 dae-phases:<a_ghz>,<e_ghz>      DAE with explicit per-phase frequencies\n\
         \x20 governed[:heuristic]            DAE with the online miss-ratio heuristic governor\n\
         \x20 governed:bandit[:<seed>]        DAE with the online EDP bandit governor\n\
         frequencies snap to the nearest DVFS table point"
    }
}

/// Full configuration of one simulated run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of simulated cores (the paper's machine: 4).
    pub cores: usize,
    /// Cache geometry.
    pub hierarchy: HierarchyConfig,
    /// Timing-model calibration.
    pub timing: TimingConfig,
    /// Available DVFS operating points.
    pub table: DvfsTable,
    /// Power model.
    pub power: PowerModel,
    /// DVFS transition behaviour.
    pub dvfs: DvfsConfig,
    /// Frequency policy.
    pub policy: FreqPolicy,
    /// Fixed per-task runtime overhead in seconds (queue operations,
    /// scheduling) — part of the O.S.I. accounting.
    pub task_overhead_s: f64,
    /// Dynamic-instruction budget per simulated phase, forwarded to the
    /// interpreter. The default is effectively unbounded for honest
    /// workloads; services running untrusted IR lower it so a hostile
    /// infinite loop burns virtual time, not wall-clock time.
    pub max_steps: u64,
    /// Execution engine for simulated phases (observationally identical
    /// either way; bytecode is several times faster).
    pub engine: EngineKind,
}

impl RuntimeConfig {
    /// The paper's evaluation setup: quad-core Sandybridge-like machine,
    /// 500 ns DVFS latency, coupled-at-fmax baseline policy.
    pub fn paper_default() -> Self {
        RuntimeConfig {
            cores: 4,
            hierarchy: HierarchyConfig::default(),
            timing: TimingConfig::default(),
            table: DvfsTable::sandybridge(),
            power: PowerModel::sandybridge(),
            dvfs: DvfsConfig::latency_500ns(),
            policy: FreqPolicy::CoupledMax,
            task_overhead_s: 150e-9,
            max_steps: 2_000_000_000,
            engine: EngineKind::default(),
        }
    }

    /// Same machine with a different per-phase instruction budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Same machine with a different policy.
    pub fn with_policy(mut self, policy: FreqPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same machine with a different DVFS transition latency.
    pub fn with_dvfs(mut self, dvfs: DvfsConfig) -> Self {
        self.dvfs = dvfs;
        self
    }

    /// Same machine with a different execution engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_quad_core() {
        let c = RuntimeConfig::paper_default();
        assert_eq!(c.cores, 4);
        assert_eq!(c.dvfs.transition_s, 500e-9);
        assert_eq!(c.policy, FreqPolicy::CoupledMax);
    }

    #[test]
    fn decoupled_classification() {
        assert!(FreqPolicy::DaeMinMax.is_decoupled());
        assert!(FreqPolicy::DaeOptimal.is_decoupled());
        assert!(!FreqPolicy::CoupledMax.is_decoupled());
        assert!(!FreqPolicy::CoupledOptimal.is_decoupled());
        let t = DvfsTable::sandybridge();
        assert!(FreqPolicy::DaePhases { access: t.min(), execute: t.max() }.is_decoupled());
        assert!(FreqPolicy::Governed(GovernorKind::Heuristic).is_decoupled());
    }

    #[test]
    fn every_policy_round_trips_through_parse() {
        let t = DvfsTable::sandybridge();
        let policies = [
            FreqPolicy::CoupledMax,
            FreqPolicy::CoupledFixed(FreqId(2)),
            FreqPolicy::CoupledOptimal,
            FreqPolicy::DaeMinMax,
            FreqPolicy::DaeOptimal,
            FreqPolicy::DaePhases { access: t.min(), execute: t.max() },
            FreqPolicy::Governed(GovernorKind::Heuristic),
            FreqPolicy::Governed(GovernorKind::Bandit { seed: 7 }),
        ];
        for p in policies {
            let spec = p.label(&t);
            assert_eq!(FreqPolicy::parse(&spec, &t), Ok(p), "round-trip of `{spec}`");
        }
    }

    #[test]
    fn parse_snaps_and_rejects() {
        let t = DvfsTable::sandybridge();
        // 2.1 GHz snaps to the nearest table point (2.0).
        assert_eq!(
            FreqPolicy::parse("coupled-fixed:2.1", &t),
            Ok(FreqPolicy::CoupledFixed(t.nearest(2.1)))
        );
        assert_eq!(
            FreqPolicy::parse("dae-phases:1.6,3.4", &t),
            Ok(FreqPolicy::DaePhases { access: t.min(), execute: t.max() })
        );
        assert_eq!(
            FreqPolicy::parse("governed", &t),
            Ok(FreqPolicy::Governed(GovernorKind::Heuristic))
        );
        assert_eq!(
            FreqPolicy::parse("governed:bandit:9", &t),
            Ok(FreqPolicy::Governed(GovernorKind::Bandit { seed: 9 }))
        );
        assert!(FreqPolicy::parse("warp-speed", &t).is_err());
        assert!(FreqPolicy::parse("dae-phases:1.6", &t).is_err());
        assert!(FreqPolicy::parse("coupled-fixed:fast", &t).is_err());
        assert!(FreqPolicy::parse("governed:oracle", &t).is_err());
        // The help text mentions every accepted form.
        for form in ["coupled-max", "coupled-fixed", "dae-minmax", "dae-optimal", "governed"] {
            assert!(FreqPolicy::help().contains(form), "help must list {form}");
        }
    }

    #[test]
    fn builder_methods() {
        let c = RuntimeConfig::paper_default()
            .with_policy(FreqPolicy::DaeMinMax)
            .with_dvfs(DvfsConfig::instant());
        assert_eq!(c.policy, FreqPolicy::DaeMinMax);
        assert_eq!(c.dvfs.transition_s, 0.0);
    }
}
