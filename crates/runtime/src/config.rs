//! Runtime configuration and frequency policies.

use dae_mem::HierarchyConfig;
use dae_power::{DvfsConfig, DvfsTable, FreqId, PowerModel};
use dae_sim::TimingConfig;

/// How the runtime picks frequencies for task phases (§3.1 and §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FreqPolicy {
    /// Coupled execution, everything at fmax (the normalisation baseline).
    CoupledMax,
    /// Coupled execution at a fixed frequency.
    CoupledFixed(FreqId),
    /// Coupled execution, per-task exhaustive optimal-EDP frequency
    /// ("CAE (Optimal f.)").
    CoupledOptimal,
    /// DAE: access at fmin, execute at fmax ("Min/Max f.").
    DaeMinMax,
    /// DAE: per-phase exhaustive optimal-EDP frequency ("Optimal f.").
    DaeOptimal,
    /// DAE with explicit per-phase frequencies (used by the Figure 4
    /// sweeps: access pinned, execute varied).
    DaePhases {
        /// Frequency of the access phase.
        access: FreqId,
        /// Frequency of the execute phase.
        execute: FreqId,
    },
}

impl FreqPolicy {
    /// True for policies that run the access phase before the execute
    /// phase.
    pub fn is_decoupled(self) -> bool {
        matches!(
            self,
            FreqPolicy::DaeMinMax | FreqPolicy::DaeOptimal | FreqPolicy::DaePhases { .. }
        )
    }
}

/// Full configuration of one simulated run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of simulated cores (the paper's machine: 4).
    pub cores: usize,
    /// Cache geometry.
    pub hierarchy: HierarchyConfig,
    /// Timing-model calibration.
    pub timing: TimingConfig,
    /// Available DVFS operating points.
    pub table: DvfsTable,
    /// Power model.
    pub power: PowerModel,
    /// DVFS transition behaviour.
    pub dvfs: DvfsConfig,
    /// Frequency policy.
    pub policy: FreqPolicy,
    /// Fixed per-task runtime overhead in seconds (queue operations,
    /// scheduling) — part of the O.S.I. accounting.
    pub task_overhead_s: f64,
}

impl RuntimeConfig {
    /// The paper's evaluation setup: quad-core Sandybridge-like machine,
    /// 500 ns DVFS latency, coupled-at-fmax baseline policy.
    pub fn paper_default() -> Self {
        RuntimeConfig {
            cores: 4,
            hierarchy: HierarchyConfig::default(),
            timing: TimingConfig::default(),
            table: DvfsTable::sandybridge(),
            power: PowerModel::sandybridge(),
            dvfs: DvfsConfig::latency_500ns(),
            policy: FreqPolicy::CoupledMax,
            task_overhead_s: 150e-9,
        }
    }

    /// Same machine with a different policy.
    pub fn with_policy(mut self, policy: FreqPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same machine with a different DVFS transition latency.
    pub fn with_dvfs(mut self, dvfs: DvfsConfig) -> Self {
        self.dvfs = dvfs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_quad_core() {
        let c = RuntimeConfig::paper_default();
        assert_eq!(c.cores, 4);
        assert_eq!(c.dvfs.transition_s, 500e-9);
        assert_eq!(c.policy, FreqPolicy::CoupledMax);
    }

    #[test]
    fn decoupled_classification() {
        assert!(FreqPolicy::DaeMinMax.is_decoupled());
        assert!(FreqPolicy::DaeOptimal.is_decoupled());
        assert!(!FreqPolicy::CoupledMax.is_decoupled());
        assert!(!FreqPolicy::CoupledOptimal.is_decoupled());
        let t = DvfsTable::sandybridge();
        assert!(FreqPolicy::DaePhases { access: t.min(), execute: t.max() }.is_decoupled());
    }

    #[test]
    fn builder_methods() {
        let c = RuntimeConfig::paper_default()
            .with_policy(FreqPolicy::DaeMinMax)
            .with_dvfs(DvfsConfig::instant());
        assert_eq!(c.policy, FreqPolicy::DaeMinMax);
        assert_eq!(c.dvfs.transition_s, 0.0);
    }
}
