//! # dae-runtime — task-based runtime with per-phase DVFS
//!
//! The runtime system of §3.1 of the CGO 2014 DAE paper, simulated in
//! deterministic virtual time: per-core task deques with **work stealing**,
//! the **access phase executed immediately before the execute phase on the
//! same core** (so the private caches stay warm), per-phase **DVFS**
//! (naive min/max and exhaustive optimal-EDP policies), transition-latency
//! accounting, and the O.S.I. (overhead / sequential / idle) bookkeeping
//! that Figure 4 stacks.
//!
//! Every run can stream event-level evidence — task/phase spans, DVFS
//! transitions, per-core idle gaps — into a [`dae_trace::TraceSink`] via
//! [`run_workload_traced`]; [`run_workload`] is the zero-cost
//! [`dae_trace::NullSink`] shorthand.
//!
//! Frequencies can also be chosen **online**: [`FreqPolicy::Governed`]
//! routes every task through a `dae-governor` policy (miss-ratio heuristic
//! or EDP bandit) that learns per-task-class operating points from the
//! feedback the scheduler already produces, and [`run_workload_governed`]
//! lets a caller keep the learned state across runs.
//!
//! # Examples
//!
//! ```no_run
//! use dae_runtime::{run_workload, FreqPolicy, RuntimeConfig, TaskInstance};
//! use dae_sim::Val;
//! # let module = dae_ir::Module::new();
//! # let exec = dae_ir::FuncId(0);
//! # let access = dae_ir::FuncId(1);
//!
//! let tasks: Vec<TaskInstance> =
//!     (0..64).map(|k| TaskInstance::decoupled(exec, access, vec![Val::I(k * 512)])).collect();
//! let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeOptimal);
//! let report = run_workload(&module, &tasks, &cfg)?;
//! println!("time {:.3} ms, EDP {:.3e}", report.time_s * 1e3, report.edp());
//! # Ok::<(), dae_sim::InterpError>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod report;
pub mod sched;

pub use config::{FreqPolicy, RuntimeConfig};
pub use dae_governor::GovernorKind;
pub use dae_sim::EngineKind;
pub use report::{Breakdown, ClassReport, CompileStats, GovernorReport, RunReport};
pub use sched::{
    run_workload, run_workload_governed, run_workload_profiled, run_workload_traced, TaskInstance,
};
