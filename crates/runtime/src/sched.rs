//! The virtual-time multicore scheduler.
//!
//! Implements the runtime of §3.1: per-core task deques with work stealing,
//! the access phase running immediately before the execute phase on the same
//! core, per-phase DVFS with transition accounting, and O.S.I. bookkeeping.
//!
//! Time is virtual: each core has a clock; the scheduler always advances the
//! least-loaded core, so the interleaving is deterministic and the
//! methodology of §3.1 (evaluate each phase at any frequency from one
//! profiled execution) is exact rather than sampled.

use crate::config::{FreqPolicy, RuntimeConfig};
use crate::report::{Breakdown, ClassReport, GovernorReport, RunReport};
use dae_governor::{Governor, PhaseObs, TaskClass, TaskObs};
use dae_ir::{FuncId, Module};
use dae_mem::{CoreCaches, SharedLlc};
use dae_pgo::{PhaseSample, ProfileCollector};
use dae_power::{phase_energy_split_j, select_optimal_edp, DvfsTable, FreqId, FreqPoint};
use dae_sim::{CachePort, InterpError, Machine, PhaseTrace, Val};
use dae_trace::{NullSink, PhaseKind, TraceEvent, TraceSink};
use std::collections::VecDeque;

/// One dynamic task instance.
#[derive(Clone, Debug)]
pub struct TaskInstance {
    /// The execute-phase function (the original task).
    pub func: FuncId,
    /// The access-phase function, when one was generated.
    pub access: Option<FuncId>,
    /// Arguments passed to both phases.
    pub args: Vec<Val>,
    /// Barrier epoch: all tasks of epoch `e` complete before any task of
    /// epoch `e+1` starts (task-graph dependencies, coarsened to phases —
    /// e.g. the factorisation steps of LU or the stages of FFT).
    pub epoch: u32,
}

impl TaskInstance {
    /// A coupled-only task (epoch 0).
    pub fn coupled(func: FuncId, args: Vec<Val>) -> Self {
        TaskInstance { func, access: None, args, epoch: 0 }
    }

    /// A decoupled task (epoch 0).
    pub fn decoupled(func: FuncId, access: FuncId, args: Vec<Val>) -> Self {
        TaskInstance { func, access: Some(access), args, epoch: 0 }
    }

    /// Moves the task to a barrier epoch (builder style).
    pub fn in_epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }
}

struct CoreState {
    caches: CoreCaches,
    clock_s: f64,
    freq: FreqId,
    busy_s: f64,
}

/// Per-core static power share (W): everything of the model except the
/// chip-level base, which is charged once over the makespan.
fn core_static_w(cfg: &RuntimeConfig, point: FreqPoint) -> f64 {
    cfg.power.static_power_w(point, 1) - cfg.power.static_base_w
}

/// Runs `tasks` to completion and reports time/energy/EDP.
///
/// Equivalent to [`run_workload_traced`] with a [`NullSink`]: no events
/// are recorded and no instrumentation cost is paid.
///
/// # Errors
///
/// Propagates interpreter traps ([`InterpError`]).
pub fn run_workload(
    module: &Module,
    tasks: &[TaskInstance],
    cfg: &RuntimeConfig,
) -> Result<RunReport, InterpError> {
    run_workload_traced(module, tasks, cfg, &mut NullSink)
}

/// Runs `tasks` to completion, streaming trace events into `sink`.
///
/// The sink only observes the run: task/phase spans, DVFS transitions and
/// per-core idle gaps are emitted with the exact times and energies the
/// scheduler charges, so exported span totals reconcile with
/// [`RunReport::breakdown`], and with a disabled sink the reported numbers
/// are bit-identical to [`run_workload`].
///
/// # Errors
///
/// Propagates interpreter traps ([`InterpError`]).
pub fn run_workload_traced(
    module: &Module,
    tasks: &[TaskInstance],
    cfg: &RuntimeConfig,
    sink: &mut dyn TraceSink,
) -> Result<RunReport, InterpError> {
    match cfg.policy {
        FreqPolicy::Governed(kind) => {
            let mut gov = kind.build(&cfg.table);
            run_scheduler(module, tasks, cfg, Some(gov.as_mut()), sink, None)
        }
        _ => run_scheduler(module, tasks, cfg, None, sink, None),
    }
}

/// Runs `tasks` to completion while collecting per-task phase profiles
/// into `collector` — the PGO collection hook.
///
/// Each completed task contributes one access sample (when it ran
/// decoupled) and one execute sample, converted from the same
/// [`PhaseTrace`] counters the report aggregates. Collection is strictly
/// observational: the returned [`RunReport`] is bit-identical to
/// [`run_workload`] on the same inputs.
///
/// # Errors
///
/// Propagates interpreter traps ([`InterpError`]).
pub fn run_workload_profiled(
    module: &Module,
    tasks: &[TaskInstance],
    cfg: &RuntimeConfig,
    collector: &mut ProfileCollector,
) -> Result<RunReport, InterpError> {
    match cfg.policy {
        FreqPolicy::Governed(kind) => {
            let mut gov = kind.build(&cfg.table);
            run_scheduler(module, tasks, cfg, Some(gov.as_mut()), &mut NullSink, Some(collector))
        }
        _ => run_scheduler(module, tasks, cfg, None, &mut NullSink, Some(collector)),
    }
}

/// Runs `tasks` under an externally-owned [`Governor`], streaming trace
/// events into `sink`.
///
/// Unlike [`run_workload_traced`] with [`FreqPolicy::Governed`] — which
/// builds fresh governor state per run — the caller keeps `gov` and can
/// carry its learned per-class decisions across runs (warm start), which
/// is how the regret bench measures convergence. The governor overrides
/// `cfg.policy` for every task; tasks with an access phase always run
/// decoupled.
///
/// # Errors
///
/// Propagates interpreter traps ([`InterpError`]).
pub fn run_workload_governed(
    module: &Module,
    tasks: &[TaskInstance],
    cfg: &RuntimeConfig,
    gov: &mut dyn Governor,
    sink: &mut dyn TraceSink,
) -> Result<RunReport, InterpError> {
    run_scheduler(module, tasks, cfg, Some(gov), sink, None)
}

/// End-of-run snapshot of the governor, with class labels resolved
/// against the module's function names.
fn governor_report(gov: &dyn Governor, module: &Module, table: &DvfsTable) -> GovernorReport {
    GovernorReport {
        governor: gov.name().to_string(),
        classes: gov
            .snapshot()
            .iter()
            .map(|s| ClassReport {
                class: format!("{}#{}", module.func(s.class.func).name, s.class.sig_hex()),
                observations: s.observations,
                explored: s.explored,
                converged: s.converged,
                guarded: s.guarded,
                access_ghz: table.point(s.access).ghz,
                execute_ghz: table.point(s.execute).ghz,
                mean_task_edp: s.mean_task_edp,
            })
            .collect(),
    }
}

fn run_scheduler(
    module: &Module,
    tasks: &[TaskInstance],
    cfg: &RuntimeConfig,
    mut gov: Option<&mut dyn Governor>,
    sink: &mut dyn TraceSink,
    mut collector: Option<&mut ProfileCollector>,
) -> Result<RunReport, InterpError> {
    let mut machine = Machine::new(module);
    machine.config.max_steps = cfg.max_steps;
    machine.config.engine = cfg.engine;
    let mut llc = SharedLlc::new(cfg.hierarchy.llc);
    let mut cores: Vec<CoreState> = (0..cfg.cores)
        .map(|_| CoreState {
            caches: CoreCaches::new(&cfg.hierarchy),
            clock_s: 0.0,
            freq: cfg.table.max(),
            busy_s: 0.0,
        })
        .collect();

    let mut energy_j = 0.0;
    let mut breakdown = Breakdown::default();
    let mut access_trace = PhaseTrace::default();
    let mut execute_trace = PhaseTrace::default();

    // Process barrier epochs in order; work stealing operates within an
    // epoch (the unit of task-graph independence).
    let mut epochs: Vec<u32> = tasks.iter().map(|t| t.epoch).collect();
    epochs.sort_unstable();
    epochs.dedup();
    for epoch in epochs {
        // Round-robin initial distribution of this epoch's tasks.
        let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); cfg.cores];
        for (slot, (i, _)) in tasks.iter().enumerate().filter(|(_, t)| t.epoch == epoch).enumerate()
        {
            deques[slot % cfg.cores].push_back(i);
        }
        loop {
            let remaining: usize = deques.iter().map(VecDeque::len).sum();
            if remaining == 0 {
                break;
            }
            // The least-loaded core runs next.
            let c = (0..cfg.cores)
                .min_by(|&a, &b| cores[a].clock_s.partial_cmp(&cores[b].clock_s).expect("finite"))
                .expect("at least one core");
            // Own work first, then steal from the fullest victim.
            let task_idx = match deques[c].pop_front() {
                Some(t) => t,
                None => {
                    let victim = (0..cfg.cores)
                        .filter(|&v| v != c)
                        .max_by_key(|&v| deques[v].len())
                        .expect("other cores exist when remaining > 0");
                    match deques[victim].pop_back() {
                        Some(t) => t,
                        None => continue,
                    }
                }
            };
            let task = &tasks[task_idx];
            run_task(
                &mut machine,
                &mut llc,
                &mut cores[c],
                cfg,
                task,
                task_idx as u32,
                &mut energy_j,
                &mut breakdown,
                &mut access_trace,
                &mut execute_trace,
                gov.as_deref_mut(),
                sink,
                c as u32,
                collector.as_deref_mut(),
            )?;
        }
        // Barrier: every core waits for the epoch's slowest (counts as idle
        // via the final makespan accounting).
        let barrier = cores.iter().map(|c| c.clock_s).fold(0.0, f64::max);
        if sink.is_enabled() {
            for (i, c) in cores.iter().enumerate() {
                let gap = barrier - c.clock_s;
                if gap > 0.0 {
                    sink.record(TraceEvent::Idle {
                        core: i as u32,
                        start_s: c.clock_s,
                        dur_s: gap,
                    });
                }
            }
        }
        for c in cores.iter_mut() {
            c.clock_s = barrier;
        }
    }

    let time_s = cores.iter().map(|c| c.clock_s).fold(0.0, f64::max);
    // Chip-level static energy over the makespan; idle cores are in sleep
    // states and contribute nothing else.
    energy_j += cfg.power.static_base_w * time_s;
    let busy_total: f64 = cores.iter().map(|c| c.busy_s).sum();
    breakdown.idle_s = (time_s * cfg.cores as f64 - busy_total).max(0.0);

    let governor = gov.map(|g| governor_report(g, module, &cfg.table));
    Ok(RunReport {
        time_s,
        energy_j,
        tasks: tasks.len(),
        breakdown,
        access_trace,
        execute_trace,
        governor,
        compile: None,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_task<'g>(
    machine: &mut Machine<'_>,
    llc: &mut SharedLlc,
    core: &mut CoreState,
    cfg: &RuntimeConfig,
    task: &TaskInstance,
    task_idx: u32,
    energy_j: &mut f64,
    breakdown: &mut Breakdown,
    access_trace: &mut PhaseTrace,
    execute_trace: &mut PhaseTrace,
    mut gov: Option<&mut (dyn Governor + 'g)>,
    sink: &mut dyn TraceSink,
    core_id: u32,
    collector: Option<&mut ProfileCollector>,
) -> Result<(), InterpError> {
    // Runtime overhead for dequeuing/scheduling this task.
    let oh = cfg.task_overhead_s;
    let oh_start = core.clock_s;
    let oh_energy = core_static_w(cfg, cfg.table.point(core.freq)) * oh;
    core.clock_s += oh;
    core.busy_s += oh;
    breakdown.overhead_s += oh;
    *energy_j += oh_energy;
    if sink.is_enabled() {
        sink.record(TraceEvent::Overhead {
            core: core_id,
            task: task_idx,
            start_s: oh_start,
            dur_s: oh,
            energy_j: oh_energy,
        });
    }

    // Governor decision, made up front from the task class alone — an
    // online governor cannot look at the phase it is about to run. The
    // frequencies it picks are applied below exactly where the static
    // policies would pick theirs.
    let decision = gov.as_deref_mut().map(|g| {
        let class = TaskClass::of(task.func, &task.args);
        let d = g.decide(class);
        if sink.is_enabled() {
            sink.record(TraceEvent::GovernorDecision {
                core: core_id,
                task: task_idx,
                class: format!("{}#{}", machine.module().func(task.func).name, class.sig_hex()),
                start_s: core.clock_s,
                access_ghz: cfg.table.point(d.access).ghz,
                execute_ghz: cfg.table.point(d.execute).ghz,
                explore: d.explore,
                guarded: d.guarded,
            });
        }
        (class, d)
    });

    let decoupled = (decision.is_some() || cfg.policy.is_decoupled()) && task.access.is_some();

    let mut a_obs = None;
    let mut a_sample: Option<PhaseSample> = None;
    if decoupled {
        let access = task.access.expect("checked");
        let mut a_trace = PhaseTrace::default();
        machine.run(
            access,
            &task.args,
            &mut CachePort { core: &mut core.caches, llc },
            &mut a_trace,
        )?;
        emit_lower_spans(machine, sink, core_id, core.clock_s);
        let a_freq = match &decision {
            Some((_, d)) => d.access,
            None => match cfg.policy {
                FreqPolicy::DaeMinMax => cfg.table.min(),
                FreqPolicy::DaePhases { access, .. } => access,
                FreqPolicy::DaeOptimal => select_optimal_edp(&cfg.table, &cfg.power, 1, |id| {
                    let f = cfg.table.point(id).hz();
                    (a_trace.time_s(f, &cfg.timing), a_trace.ipc(f, &cfg.timing))
                }),
                _ => unreachable!("coupled policy in decoupled path"),
            },
        };
        let a_switched = core.freq != a_freq;
        let (a_time, a_ipc) = charge_phase(
            core,
            cfg,
            &a_trace,
            a_freq,
            energy_j,
            breakdown,
            true,
            &mut PhaseEmit {
                sink: &mut *sink,
                core_id,
                task_idx,
                func: access,
                machine: &*machine,
            },
        );
        if decision.is_some() {
            a_obs = Some(phase_obs(cfg, &a_trace, a_freq, a_time, a_ipc, a_switched));
        }
        if collector.is_some() {
            a_sample = Some(phase_sample(cfg, &a_trace));
        }
        access_trace.merge(&a_trace);
    }

    // Execute phase (or the whole task when coupled).
    let mut e_trace = PhaseTrace::default();
    machine.run(
        task.func,
        &task.args,
        &mut CachePort { core: &mut core.caches, llc },
        &mut e_trace,
    )?;
    emit_lower_spans(machine, sink, core_id, core.clock_s);
    let e_freq = match &decision {
        Some((_, d)) => d.execute,
        None => match cfg.policy {
            FreqPolicy::CoupledMax => cfg.table.max(),
            FreqPolicy::CoupledFixed(f) => f,
            FreqPolicy::CoupledOptimal => select_optimal_edp(&cfg.table, &cfg.power, 1, |id| {
                let f = cfg.table.point(id).hz();
                (e_trace.time_s(f, &cfg.timing), e_trace.ipc(f, &cfg.timing))
            }),
            FreqPolicy::DaeMinMax => cfg.table.max(),
            FreqPolicy::DaePhases { execute, .. } => execute,
            FreqPolicy::DaeOptimal => select_optimal_edp(&cfg.table, &cfg.power, 1, |id| {
                let f = cfg.table.point(id).hz();
                (e_trace.time_s(f, &cfg.timing), e_trace.ipc(f, &cfg.timing))
            }),
            FreqPolicy::Governed(_) => unreachable!("governed policy without governor state"),
        },
    };
    let e_switched = core.freq != e_freq;
    let (e_time, e_ipc) = charge_phase(
        core,
        cfg,
        &e_trace,
        e_freq,
        energy_j,
        breakdown,
        false,
        &mut PhaseEmit { sink: &mut *sink, core_id, task_idx, func: task.func, machine: &*machine },
    );
    if let (Some(g), Some((class, _))) = (gov, &decision) {
        let obs = TaskObs {
            access: a_obs,
            execute: phase_obs(cfg, &e_trace, e_freq, e_time, e_ipc, e_switched),
        };
        g.observe(*class, &obs);
    }
    if let Some(col) = collector {
        // Keyed by the *execute* function: that is the task identity the
        // driver's base `task_key` names. Collection never perturbs the
        // charged times or energies — it only reads the traces.
        col.record(task.func, a_sample.as_ref(), &phase_sample(cfg, &e_trace));
    }
    execute_trace.merge(&e_trace);
    Ok(())
}

/// Condenses one phase's simulator counters into a [`PhaseSample`].
///
/// DRAM-level hits index 3 of the hit arrays; memory-level parallelism is
/// the interval model's proxy (DRAM misses per serialised miss cluster,
/// a cluster being one memory latency of demand stall); boundedness is
/// measured at fmax so stored profiles do not drift with whatever
/// frequency the run happened to pick.
fn phase_sample(cfg: &RuntimeConfig, trace: &PhaseTrace) -> PhaseSample {
    let dram = trace.demand_hits[3];
    let clusters =
        (trace.demand_stall_ns(&cfg.timing) / cfg.timing.mem_latency_ns).round().max(0.0);
    let mlp = if clusters > 0.0 { dram as f64 / clusters } else { 0.0 };
    let fmax = cfg.table.point(cfg.table.max()).hz();
    let mem_bound = trace.memory_bound_fraction(fmax, &cfg.timing);
    PhaseSample {
        instrs: trace.instrs,
        loads: trace.loads,
        dram_misses: dram,
        prefetches: trace.prefetches,
        prefetch_dram_lines: trace.prefetch_hits[3],
        branches: trace.branches,
        mlp_x100: (mlp * 100.0).round() as u64,
        mem_bound_ppm: (mem_bound * 1e6).round().clamp(0.0, 1e6) as u64,
    }
}

/// Forwards the machine's pending bytecode-lowering spans to the sink:
/// instantaneous on the virtual timeline (lowering is host-side work),
/// with the wall-clock cost carried as metadata.
fn emit_lower_spans(machine: &mut Machine<'_>, sink: &mut dyn TraceSink, core_id: u32, now_s: f64) {
    for s in machine.take_lower_spans() {
        if sink.is_enabled() {
            sink.record(TraceEvent::BytecodeLower {
                core: core_id,
                func: s.func,
                ops: s.ops,
                fused: s.fused,
                start_s: now_s,
                wall_s: s.wall_s,
            });
        }
    }
}

/// Condenses one charged phase into governor feedback. Time and energy are
/// evaluated at the frequency the phase ran at — energy with the *full*
/// power model (`total_power_w`), the same objective [`select_optimal_edp`]
/// minimises — **plus** the DVFS transition this phase triggered
/// (`switched`), exactly as [`charge_phase`] billed it. The oracle is
/// blind to transitions; including them here is what lets an online
/// governor learn that, for short tasks, keeping both phases at one
/// operating point beats per-phase switching. Boundedness is measured at
/// fmax so the classification does not drift with whatever frequency was
/// chosen.
fn phase_obs(
    cfg: &RuntimeConfig,
    trace: &PhaseTrace,
    freq: FreqId,
    time_s: f64,
    ipc: f64,
    switched: bool,
) -> PhaseObs {
    let point = cfg.table.point(freq);
    let fmax_hz = cfg.table.point(cfg.table.max()).hz();
    let (tr_s, tr_j) = if switched {
        let t = cfg.dvfs.transition_s;
        (t, core_static_w(cfg, point) * t)
    } else {
        (0.0, 0.0)
    };
    PhaseObs {
        time_s: time_s + tr_s,
        energy_j: cfg.power.total_power_w(point, ipc, 1) * time_s + tr_j,
        ipc,
        mem_bound_frac: trace.memory_bound_fraction(fmax_hz, &cfg.timing),
        miss_ratio: trace.miss_ratio(),
    }
}

/// Everything [`charge_phase`] needs to describe the phase it is charging
/// to the trace sink.
struct PhaseEmit<'a, 'm> {
    sink: &'a mut dyn TraceSink,
    core_id: u32,
    task_idx: u32,
    func: FuncId,
    machine: &'a Machine<'m>,
}

/// Applies DVFS transition cost (static energy only, §6.1), then charges the
/// phase's time and energy at the chosen operating point. Returns the
/// phase's `(time_s, ipc)` at that point, for governor feedback.
#[allow(clippy::too_many_arguments)]
fn charge_phase(
    core: &mut CoreState,
    cfg: &RuntimeConfig,
    trace: &PhaseTrace,
    freq: FreqId,
    energy_j: &mut f64,
    breakdown: &mut Breakdown,
    is_access: bool,
    emit: &mut PhaseEmit<'_, '_>,
) -> (f64, f64) {
    let point = cfg.table.point(freq);
    if core.freq != freq {
        let t_tr = cfg.dvfs.transition_s;
        let tr_start = core.clock_s;
        let tr_energy = core_static_w(cfg, point) * t_tr;
        core.clock_s += t_tr;
        core.busy_s += t_tr;
        breakdown.overhead_s += t_tr;
        *energy_j += tr_energy;
        if emit.sink.is_enabled() {
            emit.sink.record(TraceEvent::DvfsTransition {
                core: emit.core_id,
                start_s: tr_start,
                dur_s: t_tr,
                from_ghz: cfg.table.point(core.freq).ghz,
                to_ghz: point.ghz,
                energy_j: tr_energy,
            });
        }
        core.freq = freq;
    }
    let f_hz = point.hz();
    let time = trace.time_s(f_hz, &cfg.timing);
    let ipc = trace.ipc(f_hz, &cfg.timing);
    let power = cfg.power.dynamic_power_w(point, ipc) + core_static_w(cfg, point);
    let start = core.clock_s;
    core.clock_s += time;
    core.busy_s += time;
    *energy_j += power * time;
    if is_access {
        breakdown.access_s += time;
    } else {
        breakdown.execute_s += time;
    }
    if emit.sink.is_enabled() {
        let (dyn_j, static_j) = phase_energy_split_j(&cfg.power, point, ipc, time);
        emit.sink.record(TraceEvent::Phase {
            core: emit.core_id,
            task: emit.task_idx,
            name: emit.machine.module().func(emit.func).name.clone(),
            kind: if is_access { PhaseKind::Access } else { PhaseKind::Execute },
            start_s: start,
            dur_s: time,
            freq_ghz: point.ghz,
            dyn_energy_j: dyn_j,
            static_energy_j: static_j,
            counters: trace.counters(),
        });
    }
    (time, ipc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type, Value};
    use dae_power::{DvfsConfig, DvfsTable};

    /// A module with a streaming task over a large array plus a matching
    /// hand-built access phase (one prefetch per line).
    fn stream_module(elems: i64, chunk: i64) -> (Module, FuncId, FuncId) {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, elems as u64);
        // execute(start): for i in start..start+chunk { a[i] *= 1.5 }
        let mut b = FunctionBuilder::new("exec", vec![Type::I64], Type::Void);
        b.set_task();
        let hi = b.iadd(Value::Arg(0), chunk);
        b.counted_loop(Value::Arg(0), hi, Value::i64(1), |b, i| {
            let p = b.elem_addr(Value::Global(a), i, Type::F64);
            let v = b.load(Type::F64, p);
            let w = b.fmul(v, 1.5f64);
            b.store(p, w);
        });
        b.ret(None);
        let exec = m.add_function(b.finish());
        // access(start): prefetch every 8th element
        let mut b = FunctionBuilder::new("access", vec![Type::I64], Type::Void);
        let hi = b.iadd(Value::Arg(0), chunk);
        b.counted_loop(Value::Arg(0), hi, Value::i64(8), |b, i| {
            let p = b.elem_addr(Value::Global(a), i, Type::F64);
            b.prefetch(p);
        });
        b.ret(None);
        let access = m.add_function(b.finish());
        (m, exec, access)
    }

    fn tasks_for(exec: FuncId, access: FuncId, elems: i64, chunk: i64) -> Vec<TaskInstance> {
        (0..elems / chunk)
            .map(|k| TaskInstance::decoupled(exec, access, vec![Val::I(k * chunk)]))
            .collect()
    }

    #[test]
    fn all_tasks_execute_and_clock_advances() {
        let (m, exec, access) = stream_module(4096, 512);
        let tasks = tasks_for(exec, access, 4096, 512);
        let cfg = RuntimeConfig::paper_default();
        let r = run_workload(&m, &tasks, &cfg).unwrap();
        assert_eq!(r.tasks, 8);
        assert!(r.time_s > 0.0);
        assert!(r.energy_j > 0.0);
        assert!(r.execute_trace.instrs > 0);
        // Coupled policy never runs access phases.
        assert_eq!(r.access_trace.instrs, 0);
        assert_eq!(r.breakdown.access_s, 0.0);
    }

    #[test]
    fn dae_minmax_runs_access_phases() {
        let (m, exec, access) = stream_module(4096, 512);
        let tasks = tasks_for(exec, access, 4096, 512);
        let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeMinMax);
        let r = run_workload(&m, &tasks, &cfg).unwrap();
        assert!(r.access_trace.prefetches > 0);
        assert!(r.breakdown.access_s > 0.0);
        // Execute phase hits warm cache: no DRAM demand misses.
        assert_eq!(r.execute_trace.demand_hits[3], 0, "execute must be warmed");
    }

    #[test]
    fn dae_beats_coupled_edp_on_memory_bound_stream() {
        // The paper's core claim, end to end on a synthetic stream.
        let (m, exec, access) = stream_module(65536, 2048);
        let tasks = tasks_for(exec, access, 65536, 2048);
        let base = RuntimeConfig::paper_default();
        let cae = run_workload(&m, &tasks, &base).unwrap();
        let dae =
            run_workload(&m, &tasks, &base.clone().with_policy(FreqPolicy::DaeOptimal)).unwrap();
        assert!(
            dae.edp() < cae.edp(),
            "DAE EDP {} must beat CAE-at-fmax EDP {}",
            dae.edp(),
            cae.edp()
        );
        // and without catastrophic slowdown (paper: no performance loss at
        // 0ns, ~4% at 500ns; allow slack for the synthetic kernel)
        assert!(dae.time_s < cae.time_s * 1.25, "dae {} vs cae {}", dae.time_s, cae.time_s);
    }

    #[test]
    fn work_is_balanced_across_cores() {
        let (m, exec, access) = stream_module(16384, 512);
        let tasks = tasks_for(exec, access, 16384, 512);
        let cfg = RuntimeConfig::paper_default();
        let r = run_workload(&m, &tasks, &cfg).unwrap();
        // 32 equal tasks on 4 cores: idle must be small relative to total.
        assert!(
            r.breakdown.idle_s < 0.25 * r.time_s * cfg.cores as f64,
            "idle {} vs makespan {}",
            r.breakdown.idle_s,
            r.time_s
        );
    }

    #[test]
    fn zero_latency_dvfs_has_less_overhead() {
        let (m, exec, access) = stream_module(8192, 512);
        let tasks = tasks_for(exec, access, 8192, 512);
        let with_lat = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeMinMax);
        let no_lat = with_lat.clone().with_dvfs(DvfsConfig::instant());
        let a = run_workload(&m, &tasks, &with_lat).unwrap();
        let b = run_workload(&m, &tasks, &no_lat).unwrap();
        assert!(b.breakdown.overhead_s < a.breakdown.overhead_s);
        assert!(b.time_s <= a.time_s);
    }

    #[test]
    fn fixed_frequency_scales_compute_time() {
        // A compute-bound task: coupled time should scale ~1/f.
        let mut m = Module::new();
        let g = m.add_global("out", Type::F64, 8);
        let mut b = FunctionBuilder::new("spin", vec![Type::I64], Type::Void);
        b.set_task();
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::f64(1.0)],
            |b, _, c| vec![b.fmul(c[0], 1.0000001f64)],
        );
        let p = b.ptr_add(Value::Global(g), 0i64);
        b.store(p, out[0]);
        b.ret(None);
        let f = m.add_function(b.finish());
        let tasks = vec![TaskInstance::coupled(f, vec![Val::I(20000)])];
        let base = RuntimeConfig::paper_default();
        let fast = run_workload(&m, &tasks, &base).unwrap();
        let slow = run_workload(
            &m,
            &tasks,
            &base.clone().with_policy(FreqPolicy::CoupledFixed(base.table.min())),
        )
        .unwrap();
        let ratio = slow.breakdown.execute_s / fast.breakdown.execute_s;
        assert!((ratio - 3.4 / 1.6).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn dvfs_transition_accounting_is_exact() {
        // §6.1: a transition takes `transition_s` and burns static energy
        // only. On one core under DaePhases{min, max} every task performs
        // exactly two transitions (→fmin for access, →fmax for execute),
        // so N = 2 · tasks must add exactly N × transition_s to overhead
        // and the matching static energy.
        let (m, exec, access) = stream_module(4096, 512);
        let tasks = tasks_for(exec, access, 4096, 512);
        let mut cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaePhases {
            access: DvfsTable::sandybridge().min(),
            execute: DvfsTable::sandybridge().max(),
        });
        cfg.cores = 1;
        let t_tr = cfg.dvfs.transition_s;
        let n = 2 * tasks.len();

        let mut rec = dae_trace::Recorder::new(cfg.cores);
        let with_lat = run_workload_traced(&m, &tasks, &cfg, &mut rec).unwrap();
        let no_lat =
            run_workload(&m, &tasks, &cfg.clone().with_dvfs(DvfsConfig::instant())).unwrap();

        // Time: N transitions, each transition_s, all of it overhead.
        let dispatch = tasks.len() as f64 * cfg.task_overhead_s;
        let extra_overhead = with_lat.breakdown.overhead_s - no_lat.breakdown.overhead_s;
        assert!((extra_overhead - n as f64 * t_tr).abs() < 1e-15, "{extra_overhead}");
        assert!((no_lat.breakdown.overhead_s - dispatch).abs() < 1e-15);
        assert!((with_lat.time_s - no_lat.time_s - n as f64 * t_tr).abs() < 1e-15);

        // Energy: per-core static at the target point for each transition,
        // plus chip base static over the lengthened makespan.
        let w_min = core_static_w(&cfg, cfg.table.point(cfg.table.min()));
        let w_max = core_static_w(&cfg, cfg.table.point(cfg.table.max()));
        let expected_e =
            tasks.len() as f64 * t_tr * (w_min + w_max) + cfg.power.static_base_w * n as f64 * t_tr;
        let extra_e = with_lat.energy_j - no_lat.energy_j;
        assert!(
            (extra_e - expected_e).abs() < expected_e * 1e-9,
            "extra {extra_e} vs expected {expected_e}"
        );

        // The trace agrees event by event.
        let transitions: Vec<_> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                dae_trace::TraceEvent::DvfsTransition { dur_s, energy_j, .. } => {
                    Some((*dur_s, *energy_j))
                }
                _ => None,
            })
            .collect();
        assert_eq!(transitions.len(), n);
        assert!(transitions.iter().all(|(d, _)| *d == t_tr));
        let traced_e: f64 = transitions.iter().map(|(_, e)| e).sum();
        let static_only = tasks.len() as f64 * t_tr * (w_min + w_max);
        assert!((traced_e - static_only).abs() < static_only * 1e-9);

        // Zero-transition control: coupled-at-fmax never switches.
        let mut rec = dae_trace::Recorder::new(cfg.cores);
        let coupled = run_workload_traced(
            &m,
            &tasks,
            &cfg.clone().with_policy(FreqPolicy::CoupledMax),
            &mut rec,
        )
        .unwrap();
        assert!((coupled.breakdown.overhead_s - dispatch).abs() < 1e-15);
        assert!(rec
            .events()
            .iter()
            .all(|e| !matches!(e, dae_trace::TraceEvent::DvfsTransition { .. })));
    }

    #[test]
    fn tracing_does_not_change_results() {
        // The acceptance bar: with a recording sink attached the reported
        // numbers are bit-identical to the untraced run.
        let (m, exec, access) = stream_module(8192, 512);
        let tasks = tasks_for(exec, access, 8192, 512);
        let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeOptimal);
        let plain = run_workload(&m, &tasks, &cfg).unwrap();
        let mut rec = dae_trace::Recorder::new(cfg.cores);
        let traced = run_workload_traced(&m, &tasks, &cfg, &mut rec).unwrap();
        assert_eq!(plain.time_s.to_bits(), traced.time_s.to_bits());
        assert_eq!(plain.energy_j.to_bits(), traced.energy_j.to_bits());
        assert_eq!(plain.breakdown, traced.breakdown);
        assert!(!rec.is_empty());
    }

    #[test]
    fn profiling_collects_samples_without_changing_results() {
        let (m, exec, access) = stream_module(8192, 512);
        let tasks = tasks_for(exec, access, 8192, 512);
        let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeOptimal);
        let plain = run_workload(&m, &tasks, &cfg).unwrap();
        let mut col = ProfileCollector::new();
        let profiled = run_workload_profiled(&m, &tasks, &cfg, &mut col).unwrap();
        // Strictly observational: bit-identical report.
        assert_eq!(plain.time_s.to_bits(), profiled.time_s.to_bits());
        assert_eq!(plain.energy_j.to_bits(), profiled.energy_j.to_bits());
        assert_eq!(plain.breakdown, profiled.breakdown);
        // One record per distinct task function, with both phases seen.
        assert_eq!(col.len(), 1);
        let (&func, p) = col.iter().next().unwrap();
        assert_eq!(func, exec);
        assert_eq!(p.runs as usize, tasks.len());
        assert!(p.access.prefetches > 0, "access phase issued prefetches");
        assert!(p.execute.instrs > 0);
        // The aggregate matches the run's own trace totals.
        assert_eq!(p.execute.instrs, profiled.execute_trace.instrs);
        assert_eq!(p.access.prefetches, profiled.access_trace.prefetches);

        // Coupled runs contribute no access sample.
        let coupled: Vec<TaskInstance> =
            tasks.iter().map(|t| TaskInstance::coupled(t.func, t.args.clone())).collect();
        let mut col = ProfileCollector::new();
        let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::CoupledMax);
        run_workload_profiled(&m, &coupled, &cfg, &mut col).unwrap();
        let (_, p) = col.iter().next().unwrap();
        assert_eq!(p.access.instrs, 0);
        assert!(p.execute.instrs > 0);
    }

    #[test]
    fn trace_spans_reconcile_with_breakdown() {
        // Per-category span totals must match the O.S.I. breakdown, and
        // spans within one core lane must not overlap.
        let (m, exec, access) = stream_module(16384, 512);
        let tasks = tasks_for(exec, access, 16384, 512);
        let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeMinMax);
        let mut rec = dae_trace::Recorder::new(cfg.cores);
        let r = run_workload_traced(&m, &tasks, &cfg, &mut rec).unwrap();

        let mut by_cat = std::collections::HashMap::new();
        for e in rec.events() {
            *by_cat.entry(e.category()).or_insert(0.0) += e.dur_s();
        }
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
        assert!(close(by_cat["access"], r.breakdown.access_s));
        assert!(close(by_cat["execute"], r.breakdown.execute_s));
        assert!(close(
            by_cat["overhead"] + by_cat.get("dvfs").copied().unwrap_or(0.0),
            r.breakdown.overhead_s
        ));
        assert!(close(by_cat.get("idle").copied().unwrap_or(0.0), r.breakdown.idle_s));

        for core in 0..cfg.cores as u32 {
            let mut spans: Vec<(f64, f64)> = rec
                .events()
                .iter()
                .filter(|e| e.core() == core)
                .map(|e| (e.start_s(), e.end_s()))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-12, "overlap on core {core}: {w:?}");
            }
        }

        // The trace-level summary sees the same totals.
        let s = dae_trace::summary::Summary::from_recorder(&rec);
        assert_eq!(s.tasks, tasks.len());
        assert!(close(s.access_s, r.breakdown.access_s));
        assert!(close(s.idle_s, r.breakdown.idle_s));
        assert_eq!(s.execute_counters.instrs, r.execute_trace.instrs);
    }

    #[test]
    fn governed_run_reports_learned_classes() {
        let (m, exec, access) = stream_module(16384, 512);
        let tasks = tasks_for(exec, access, 16384, 512);
        let cfg = RuntimeConfig::paper_default()
            .with_policy(FreqPolicy::Governed(dae_governor::GovernorKind::Bandit { seed: 1 }));
        let r = run_workload(&m, &tasks, &cfg).unwrap();
        assert!(r.access_trace.prefetches > 0, "governed tasks run decoupled");
        let g = r.governor.expect("governed run must carry a governor report");
        assert_eq!(g.governor, "bandit");
        assert!(!g.classes.is_empty());
        let total: u64 = g.classes.iter().map(|c| c.observations).sum();
        assert_eq!(total, 32, "every completed task is observed exactly once");
        assert!(g.classes.iter().all(|c| c.class.contains('#')));
        // Non-governed runs carry no governor section.
        let plain = run_workload(&m, &tasks, &RuntimeConfig::paper_default()).unwrap();
        assert!(plain.governor.is_none());
    }

    #[test]
    fn governed_decisions_are_traced() {
        let (m, exec, access) = stream_module(8192, 512);
        let tasks = tasks_for(exec, access, 8192, 512);
        let cfg = RuntimeConfig::paper_default()
            .with_policy(FreqPolicy::Governed(dae_governor::GovernorKind::Heuristic));
        let mut rec = dae_trace::Recorder::new(cfg.cores);
        let r = run_workload_traced(&m, &tasks, &cfg, &mut rec).unwrap();
        let decisions: Vec<_> = rec
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::GovernorDecision { .. }))
            .collect();
        assert_eq!(decisions.len(), tasks.len(), "one decision per task");
        // Decisions are instantaneous: span totals still reconcile.
        let span_s: f64 = rec.events().iter().map(|e| e.dur_s()).sum();
        let busy = r.breakdown.access_s + r.breakdown.execute_s + r.breakdown.overhead_s;
        assert!((span_s - busy - r.breakdown.idle_s).abs() < 1e-9);
        // And the traced run matches the untraced one bit for bit.
        let plain = run_workload(&m, &tasks, &cfg).unwrap();
        assert_eq!(plain.time_s.to_bits(), r.time_s.to_bits());
        assert_eq!(plain.energy_j.to_bits(), r.energy_j.to_bits());
    }

    #[test]
    fn external_governor_state_carries_across_runs() {
        let (m, exec, access) = stream_module(8192, 512);
        let tasks = tasks_for(exec, access, 8192, 512);
        let cfg = RuntimeConfig::paper_default();
        let mut gov = dae_governor::GovernorKind::Bandit { seed: 3 }.build(&cfg.table);
        let mut obs = Vec::new();
        for _ in 0..3 {
            let r = run_workload_governed(&m, &tasks, &cfg, gov.as_mut(), &mut NullSink).unwrap();
            let g = r.governor.unwrap();
            obs.push(g.classes.iter().map(|c| c.observations).sum::<u64>());
        }
        assert_eq!(obs, [16, 32, 48], "observations accumulate across runs");
    }

    #[test]
    fn coupled_optimal_never_loses_edp() {
        // Optimal-EDP CAE is an exhaustive per-task search: it can never end
        // up with worse EDP than the fmax baseline (modulo transition cost).
        let (m, exec, access) = stream_module(65536, 2048);
        let tasks: Vec<TaskInstance> =
            (0..32).map(|k| TaskInstance::coupled(exec, vec![Val::I(k * 2048)])).collect();
        let _ = access;
        let base = RuntimeConfig::paper_default();
        let max = run_workload(&m, &tasks, &base).unwrap();
        let opt = run_workload(&m, &tasks, &base.clone().with_policy(FreqPolicy::CoupledOptimal))
            .unwrap();
        assert!(opt.energy_j <= max.energy_j * 1.001);
        assert!(opt.edp() <= max.edp() * 1.001);
    }
}
