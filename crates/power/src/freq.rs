//! Voltage–frequency operating points.

/// One DVFS operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FreqPoint {
    /// Core frequency in GHz.
    pub ghz: f64,
    /// Supply voltage in volts.
    pub volts: f64,
}

impl FreqPoint {
    /// Frequency in Hz.
    pub fn hz(&self) -> f64 {
        self.ghz * 1e9
    }
}

/// Index into a [`DvfsTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FreqId(pub usize);

/// The table of available operating points, slowest first.
#[derive(Clone, Debug, PartialEq)]
pub struct DvfsTable {
    points: Vec<FreqPoint>,
}

impl DvfsTable {
    /// Builds a table from explicit points (must be sorted slowest first).
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or not sorted by frequency.
    pub fn new(points: Vec<FreqPoint>) -> Self {
        assert!(!points.is_empty(), "empty DVFS table");
        assert!(
            points.windows(2).all(|w| w[0].ghz < w[1].ghz),
            "DVFS table must be sorted by frequency"
        );
        DvfsTable { points }
    }

    /// The Sandybridge-like table used throughout the evaluation: 1.6 GHz to
    /// 3.4 GHz in 400 MHz steps (§6.2 of the paper), with a linear
    /// voltage–frequency map spanning 0.80 V – 1.25 V.
    pub fn sandybridge() -> Self {
        let fmin = 1.6;
        let fmax = 3.4;
        let vmin = 0.80;
        let vmax = 1.25;
        let mut points = Vec::new();
        let mut f = fmin;
        while f < fmax + 1e-9 {
            let v = vmin + (f - fmin) / (fmax - fmin) * (vmax - vmin);
            points.push(FreqPoint { ghz: f, volts: v });
            // the paper scans "from fmin (1.6GHz) to fmax (3.4GHz) in steps
            // of 400MHz"; the last step lands on 3.4 exactly via clamping
            f = if f + 0.4 > fmax && f < fmax { fmax } else { f + 0.4 };
        }
        DvfsTable::new(points)
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the table has no points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Slowest point.
    pub fn min(&self) -> FreqId {
        FreqId(0)
    }

    /// Fastest point.
    pub fn max(&self) -> FreqId {
        FreqId(self.points.len() - 1)
    }

    /// The operating point for `id`.
    pub fn point(&self, id: FreqId) -> FreqPoint {
        self.points[id.0]
    }

    /// Iterates over `(id, point)` slowest first.
    pub fn iter(&self) -> impl Iterator<Item = (FreqId, FreqPoint)> + '_ {
        self.points.iter().enumerate().map(|(i, p)| (FreqId(i), *p))
    }

    /// The operating point closest in frequency to `ghz` (ties go to the
    /// slower point). Useful for mapping a continuous frequency target —
    /// e.g. a governor's interpolated choice — onto the discrete table.
    pub fn nearest(&self, ghz: f64) -> FreqId {
        let mut best = 0;
        for (i, p) in self.points.iter().enumerate() {
            if (p.ghz - ghz).abs() < (self.points[best].ghz - ghz).abs() {
                best = i;
            }
        }
        FreqId(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandybridge_span() {
        let t = DvfsTable::sandybridge();
        assert_eq!(t.point(t.min()).ghz, 1.6);
        assert!((t.point(t.max()).ghz - 3.4).abs() < 1e-9);
        assert!(t.len() >= 5, "expected several steps, got {}", t.len());
        // voltage increases with frequency
        for w in 0..t.len() - 1 {
            assert!(t.point(FreqId(w)).volts < t.point(FreqId(w + 1)).volts);
        }
        assert!((t.point(t.min()).volts - 0.80).abs() < 1e-9);
        assert!((t.point(t.max()).volts - 1.25).abs() < 1e-9);
    }

    #[test]
    fn hz_conversion() {
        let p = FreqPoint { ghz: 2.0, volts: 1.0 };
        assert_eq!(p.hz(), 2.0e9);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_table_panics() {
        let _ = DvfsTable::new(vec![
            FreqPoint { ghz: 2.0, volts: 1.0 },
            FreqPoint { ghz: 1.6, volts: 0.9 },
        ]);
    }

    #[test]
    fn nearest_maps_onto_the_table() {
        let t = DvfsTable::sandybridge();
        assert_eq!(t.nearest(0.1), t.min());
        assert_eq!(t.nearest(99.0), t.max());
        assert_eq!(t.nearest(2.0), FreqId(1));
        // Ties go to the slower point: 1.8 is equidistant from 1.6 and 2.0.
        assert_eq!(t.nearest(1.8), FreqId(0));
        for (id, p) in t.iter() {
            assert_eq!(t.nearest(p.ghz), id);
        }
    }

    #[test]
    fn iter_yields_all() {
        let t = DvfsTable::sandybridge();
        assert_eq!(t.iter().count(), t.len());
        assert_eq!(t.iter().next().unwrap().0, t.min());
    }
}
