//! The calibrated Sandybridge power model of Koukos et al. (ICS'13), §3.2.
//!
//! * effective capacitance `Ceff = 0.19·IPC + 1.64` (nF),
//! * dynamic power `Pdyn = Ceff · f · V²`,
//! * static power linear in `V·f` per active core plus a chip constant,
//! * `Energy = T · P`, `EDP = T² · P = T · E`.

use crate::freq::{DvfsTable, FreqId, FreqPoint};

/// The power model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    /// Slope of `Ceff(IPC)` in nF per IPC (paper: 0.19).
    pub ceff_slope_nf: f64,
    /// Intercept of `Ceff(IPC)` in nF (paper: 1.64).
    pub ceff_base_nf: f64,
    /// Chip-level static power constant in W.
    pub static_base_w: f64,
    /// Static power slope per `V·GHz` per active core, in W.
    pub static_vf_slope_w: f64,
    /// Static power per active core independent of V/f, in W.
    pub static_per_core_w: f64,
}

impl PowerModel {
    /// The calibrated model from the paper (Ceff terms) with static-power
    /// coefficients fitted to typical Sandybridge package measurements.
    pub fn sandybridge() -> PowerModel {
        PowerModel {
            ceff_slope_nf: 0.19,
            ceff_base_nf: 1.64,
            static_base_w: 3.0,
            static_vf_slope_w: 1.2,
            static_per_core_w: 0.8,
        }
    }

    /// Effective switched capacitance (nF) at the given IPC.
    pub fn ceff_nf(&self, ipc: f64) -> f64 {
        self.ceff_slope_nf * ipc + self.ceff_base_nf
    }

    /// Dynamic power of one core in watts: `Ceff · f · V²`
    /// (nF · GHz · V² = W).
    pub fn dynamic_power_w(&self, point: FreqPoint, ipc: f64) -> f64 {
        self.ceff_nf(ipc) * point.ghz * point.volts * point.volts
    }

    /// Static power in watts for `active_cores` cores at `point`.
    pub fn static_power_w(&self, point: FreqPoint, active_cores: usize) -> f64 {
        self.static_base_w
            + active_cores as f64
                * (self.static_per_core_w + self.static_vf_slope_w * point.volts * point.ghz)
    }

    /// Total power of a single core plus its share of static power.
    pub fn total_power_w(&self, point: FreqPoint, ipc: f64, active_cores: usize) -> f64 {
        self.dynamic_power_w(point, ipc) + self.static_power_w(point, active_cores)
    }
}

/// Energy in joules for running `time_s` seconds at `power_w` watts.
pub fn energy_j(time_s: f64, power_w: f64) -> f64 {
    time_s * power_w
}

/// Energy-delay product: `EDP = T² · P = T · E`.
pub fn edp(time_s: f64, energy_j: f64) -> f64 {
    time_s * energy_j
}

/// DVFS transition behaviour (§6.1: 500 ns on current hardware; 0 for the
/// ideal-future projection).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DvfsConfig {
    /// Seconds per frequency transition.
    pub transition_s: f64,
}

impl DvfsConfig {
    /// The paper's "state-of-the-art" 500 ns transition latency.
    pub fn latency_500ns() -> DvfsConfig {
        DvfsConfig { transition_s: 500e-9 }
    }

    /// The paper's ideal instant-DVFS projection.
    pub fn instant() -> DvfsConfig {
        DvfsConfig { transition_s: 0.0 }
    }
}

/// Cost of one DVFS transition: it takes [`DvfsConfig::transition_s`] and
/// burns **static energy only** ("During each DVFS transition we count only
/// the static energy, since no instructions are executed", §6.1).
pub fn transition_cost(
    model: &PowerModel,
    cfg: &DvfsConfig,
    at: FreqPoint,
    active_cores: usize,
) -> (f64, f64) {
    let t = cfg.transition_s;
    let p = model.static_power_w(at, active_cores);
    (t, t * p)
}

/// Splits one core's energy over a phase of `time_s` seconds at `point`
/// into `(dynamic_j, static_j)`.
///
/// The static share is the per-core slice of the model — everything except
/// the chip-level base, which the runtime charges once over the makespan.
/// This is the split the tracing subsystem attaches to phase events so
/// energy counter tracks can be reconstructed per phase.
pub fn phase_energy_split_j(
    model: &PowerModel,
    point: FreqPoint,
    ipc: f64,
    time_s: f64,
) -> (f64, f64) {
    let dyn_j = model.dynamic_power_w(point, ipc) * time_s;
    let static_j = (model.static_power_w(point, 1) - model.static_base_w) * time_s;
    (dyn_j, static_j)
}

/// Picks the operating point minimising EDP for a phase, given a callback
/// that reports `(time_s, ipc)` of the phase at each candidate frequency.
/// This is the paper's *Optimal-f* policy (exhaustive search, §6.1).
pub fn select_optimal_edp(
    table: &DvfsTable,
    model: &PowerModel,
    active_cores: usize,
    mut eval: impl FnMut(FreqId) -> (f64, f64),
) -> FreqId {
    let mut best = table.min();
    let mut best_edp = f64::INFINITY;
    for (id, point) in table.iter() {
        let (time, ipc) = eval(id);
        let p = model.total_power_w(point, ipc, active_cores);
        let e = energy_j(time, p);
        let metric = edp(time, e);
        if metric < best_edp {
            best_edp = metric;
            best = id;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::sandybridge()
    }

    #[test]
    fn ceff_matches_paper() {
        let m = model();
        assert!((m.ceff_nf(1.0) - 1.83).abs() < 1e-12);
        assert!((m.ceff_nf(2.0) - 2.02).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_scales_superlinearly_with_f() {
        let m = model();
        let t = DvfsTable::sandybridge();
        let lo = m.dynamic_power_w(t.point(t.min()), 1.0);
        let hi = m.dynamic_power_w(t.point(t.max()), 1.0);
        // f ratio is 2.125; with V² the power ratio must exceed it clearly.
        assert!(hi / lo > 3.0, "expected superlinear growth, got {}", hi / lo);
    }

    #[test]
    fn static_power_increases_with_cores_and_vf() {
        let m = model();
        let t = DvfsTable::sandybridge();
        let p1 = m.static_power_w(t.point(t.min()), 1);
        let p4 = m.static_power_w(t.point(t.min()), 4);
        assert!(p4 > p1);
        let hi = m.static_power_w(t.point(t.max()), 4);
        assert!(hi > p4);
    }

    #[test]
    fn edp_definition() {
        // EDP = T² · P
        let t = 2.0;
        let p = 10.0;
        let e = energy_j(t, p);
        assert_eq!(edp(t, e), t * t * p);
    }

    #[test]
    fn transition_burns_static_energy_only() {
        let m = model();
        let t = DvfsTable::sandybridge();
        let cfg = DvfsConfig::latency_500ns();
        let (time, e) = transition_cost(&m, &cfg, t.point(t.min()), 4);
        assert_eq!(time, 500e-9);
        assert!((e - time * m.static_power_w(t.point(t.min()), 4)).abs() < 1e-18);
        let (t0, e0) = transition_cost(&m, &DvfsConfig::instant(), t.point(t.min()), 4);
        assert_eq!((t0, e0), (0.0, 0.0));
    }

    #[test]
    fn phase_energy_split_sums_to_per_core_power() {
        let m = model();
        let t = DvfsTable::sandybridge();
        let point = t.point(t.max());
        let (dyn_j, static_j) = phase_energy_split_j(&m, point, 1.5, 0.01);
        assert!((dyn_j - m.dynamic_power_w(point, 1.5) * 0.01).abs() < 1e-15);
        let per_core_static = m.static_power_w(point, 1) - m.static_base_w;
        assert!((static_j - per_core_static * 0.01).abs() < 1e-15);
        assert!(dyn_j > 0.0 && static_j > 0.0);
    }

    #[test]
    fn optimal_edp_picks_low_f_for_memory_bound() {
        // Memory-bound phase: time nearly flat in f → lowest f wins EDP.
        let m = model();
        let t = DvfsTable::sandybridge();
        let best = select_optimal_edp(&t, &m, 1, |id| {
            let f = t.point(id).ghz;
            let time = 1.0 + 0.01 * (f - 1.6); // ~flat
            (time, 0.3)
        });
        assert_eq!(best, t.min());
    }

    #[test]
    fn optimal_edp_picks_high_f_for_compute_bound() {
        // Compute-bound: time = work/f → EDP = (w/f)²·P; with our V(f) the
        // t² drop beats the power rise across the whole range.
        let m = model();
        let t = DvfsTable::sandybridge();
        let best = select_optimal_edp(&t, &m, 1, |id| {
            let f = t.point(id).ghz;
            (3.4 / f, 2.0)
        });
        assert_eq!(best, t.max());
    }
}
