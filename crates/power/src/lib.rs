//! # dae-power — the DVFS power/energy/EDP model
//!
//! Implements the power methodology of §3.2 of the CGO 2014 DAE paper: the
//! measured Sandybridge model of Koukos et al. (ICS'13) with
//! `Ceff = 0.19·IPC + 1.64`, `Pdyn = Ceff·f·V²`, static power linear in
//! `V·f` per active core, plus DVFS transition accounting (static energy
//! only during the transition) and the exhaustive *Optimal-f* EDP search
//! used in the evaluation.
//!
//! # Examples
//!
//! ```
//! use dae_power::{edp, energy_j, DvfsTable, PowerModel};
//!
//! let table = DvfsTable::sandybridge();
//! let model = PowerModel::sandybridge();
//! let point = table.point(table.max());
//!
//! let time = 0.010; // 10 ms phase
//! let power = model.total_power_w(point, 1.5, 4);
//! let e = energy_j(time, power);
//! assert!(edp(time, e) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod freq;
pub mod model;

pub use freq::{DvfsTable, FreqId, FreqPoint};
pub use model::{
    edp, energy_j, phase_energy_split_j, select_optimal_edp, transition_cost, DvfsConfig,
    PowerModel,
};
