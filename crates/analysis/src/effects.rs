//! Side-effect and externals analysis.
//!
//! The paper's safety conditions (§3.1, §5.2) require knowing whether a task
//! (a) computes addresses / control flow only from values visible inside the
//! task and (b) contains calls that cannot be inlined. This module answers
//! both questions.

use dae_ir::{FuncId, Function, GlobalId, InstKind, Module, Value};
use std::collections::HashSet;

/// Summary of a function's interactions with state visible outside it.
#[derive(Clone, Debug, Default)]
pub struct EffectSummary {
    /// Globals read through statically-known bases.
    pub reads_globals: HashSet<GlobalId>,
    /// Globals written through statically-known bases.
    pub writes_globals: HashSet<GlobalId>,
    /// Loads whose base pointer could not be traced to a global (e.g. a
    /// pointer argument or a loaded pointer).
    pub reads_unknown_ptr: bool,
    /// Stores whose base pointer could not be traced to a global.
    pub writes_unknown_ptr: bool,
    /// Direct callees.
    pub callees: Vec<FuncId>,
}

impl EffectSummary {
    /// True if the function performs no stores at all.
    pub fn is_read_only(&self) -> bool {
        self.writes_globals.is_empty() && !self.writes_unknown_ptr
    }
}

/// Traces a pointer value to the global it is based on, looking through
/// `ptradd` chains. Returns `None` for argument pointers and loaded pointers.
pub fn trace_base(func: &Function, mut v: Value) -> Option<GlobalId> {
    loop {
        match v {
            Value::Global(g) => return Some(g),
            Value::Inst(id) => match &func.inst(id).kind {
                InstKind::PtrAdd { base, .. } => v = *base,
                InstKind::Select { then_value, else_value, .. } => {
                    // Only if both arms share a base.
                    let a = trace_base(func, *then_value)?;
                    let b = trace_base(func, *else_value)?;
                    return if a == b { Some(a) } else { None };
                }
                _ => return None,
            },
            _ => return None,
        }
    }
}

/// Computes the [`EffectSummary`] of `func`.
pub fn summarize(func: &Function) -> EffectSummary {
    let mut s = EffectSummary::default();
    func.for_each_placed_inst(|_, inst| match &func.inst(inst).kind {
        InstKind::Load { addr } => match trace_base(func, *addr) {
            Some(g) => {
                s.reads_globals.insert(g);
            }
            None => s.reads_unknown_ptr = true,
        },
        InstKind::Store { addr, .. } => match trace_base(func, *addr) {
            Some(g) => {
                s.writes_globals.insert(g);
            }
            None => s.writes_unknown_ptr = true,
        },
        InstKind::Call { callee, .. } => s.callees.push(*callee),
        _ => {}
    });
    s
}

/// True if inlining every (transitive) call in `func` terminates — i.e. the
/// call graph reachable from `func` contains no cycle through `func` or any
/// callee.
pub fn is_fully_inlinable(module: &Module, func: FuncId) -> bool {
    // DFS with an on-stack set detects recursion.
    fn dfs(
        module: &Module,
        f: FuncId,
        on_stack: &mut HashSet<FuncId>,
        done: &mut HashSet<FuncId>,
    ) -> bool {
        if done.contains(&f) {
            return true;
        }
        if !on_stack.insert(f) {
            return false;
        }
        let summary = summarize(module.func(f));
        for callee in summary.callees {
            if !dfs(module, callee, on_stack, done) {
                return false;
            }
        }
        on_stack.remove(&f);
        done.insert(f);
        true
    }
    dfs(module, func, &mut HashSet::new(), &mut HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type};

    #[test]
    fn summarizes_reads_and_writes() {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 8);
        let b_g = m.add_global("b", Type::F64, 8);
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let pa = b.ptr_add(Value::Global(a), 0i64);
        let x = b.load(Type::F64, pa);
        let pb = b.ptr_add(Value::Global(b_g), 8i64);
        b.store(pb, x);
        b.ret(None);
        let f = b.finish();
        let s = summarize(&f);
        assert!(s.reads_globals.contains(&a));
        assert!(s.writes_globals.contains(&b_g));
        assert!(!s.reads_unknown_ptr);
        assert!(!s.is_read_only());
    }

    #[test]
    fn pointer_args_are_unknown() {
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr], Type::Void);
        let x = b.load(Type::F64, Value::Arg(0));
        let _ = x;
        b.ret(None);
        let s = summarize(&b.finish());
        assert!(s.reads_unknown_ptr);
        assert!(s.is_read_only());
    }

    #[test]
    fn loaded_pointer_is_unknown() {
        let mut m = Module::new();
        let a = m.add_global("list", Type::Ptr, 8);
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let head = b.load(Type::Ptr, Value::Global(a));
        let _ = b.load(Type::F64, head);
        b.ret(None);
        let s = summarize(&b.finish());
        assert!(s.reads_globals.contains(&a));
        assert!(s.reads_unknown_ptr);
    }

    #[test]
    fn recursion_blocks_inlining() {
        let mut m = Module::new();
        // fn r() { r() }
        let mut b = FunctionBuilder::new("r", vec![], Type::Void);
        // FuncId(0) will be r itself (first added function).
        b.call(FuncId(0), vec![], Type::Void);
        b.ret(None);
        let r = m.add_function(b.finish());
        assert!(!is_fully_inlinable(&m, r));
    }

    #[test]
    fn dag_calls_are_inlinable() {
        let mut m = Module::new();
        let mut leaf = FunctionBuilder::new("leaf", vec![], Type::Void);
        leaf.ret(None);
        let leaf = m.add_function(leaf.finish());
        let mut mid = FunctionBuilder::new("mid", vec![], Type::Void);
        mid.call(leaf, vec![], Type::Void);
        mid.call(leaf, vec![], Type::Void);
        mid.ret(None);
        let mid = m.add_function(mid.finish());
        let mut top = FunctionBuilder::new("top", vec![], Type::Void);
        top.call(mid, vec![], Type::Void);
        top.call(leaf, vec![], Type::Void);
        top.ret(None);
        let top = m.add_function(top.finish());
        assert!(is_fully_inlinable(&m, top));
        assert!(is_fully_inlinable(&m, mid));
        assert!(is_fully_inlinable(&m, leaf));
    }

    #[test]
    fn select_of_same_base_traces() {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 16);
        let mut b = FunctionBuilder::new("f", vec![Type::Bool], Type::Void);
        let p1 = b.ptr_add(Value::Global(a), 0i64);
        let p2 = b.ptr_add(Value::Global(a), 64i64);
        let p = b.select(Value::Arg(0), p1, p2);
        let _ = b.load(Type::F64, p);
        b.ret(None);
        let f = b.finish();
        let s = summarize(&f);
        assert!(s.reads_globals.contains(&a));
        assert!(!s.reads_unknown_ptr);
    }
}
