//! SSA dominance verification.
//!
//! The structural verifier in `dae-ir` checks types and arities; this pass
//! checks the defining property of SSA that needs a dominator tree: **every
//! use of a value is dominated by its definition**. Transforms in this
//! workspace run it in their test suites after every rewrite.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use dae_ir::{BlockId, Function, InstId, Value};
use std::collections::HashMap;
use std::fmt;

/// A dominance violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsaError {
    /// Function name.
    pub func: String,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for SsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SSA violation in `{}`: {}", self.func, self.message)
    }
}

impl std::error::Error for SsaError {}

/// Verifies that every operand's definition dominates its use.
///
/// Instruction results must be defined earlier in the same block or in a
/// strictly dominating block; block parameters dominate exactly the blocks
/// their owner dominates; edge arguments are uses at the *end* of the
/// predecessor.
///
/// # Errors
///
/// Returns the first violation found. Unreachable blocks are skipped (they
/// are dead and removed by compaction).
pub fn verify_ssa(func: &Function) -> Result<(), SsaError> {
    let cfg = Cfg::new(func);
    let dom = DomTree::new(func, &cfg);

    // Definition site of every placed instruction: (block, position).
    let mut def_site: HashMap<InstId, (BlockId, usize)> = HashMap::new();
    for &bb in cfg.rpo() {
        for (pos, &inst) in func.block(bb).insts.iter().enumerate() {
            def_site.insert(inst, (bb, pos));
        }
    }

    let err = |msg: String| SsaError { func: func.name.clone(), message: msg };

    // A use at (block, pos) of value v is legal iff…
    let check_use = |v: Value, use_bb: BlockId, use_pos: usize| -> Result<(), SsaError> {
        match v {
            Value::Inst(id) => {
                let (def_bb, def_pos) = *def_site
                    .get(&id)
                    .ok_or_else(|| err(format!("{use_bb}: use of unplaced {id}")))?;
                let ok = if def_bb == use_bb {
                    def_pos < use_pos
                } else {
                    dom.dominates(def_bb, use_bb)
                };
                if !ok {
                    return Err(err(format!(
                        "{id} (defined in {def_bb}) does not dominate its use in {use_bb}"
                    )));
                }
            }
            Value::BlockParam { block, .. } if !dom.dominates(block, use_bb) => {
                return Err(err(format!("param of {block} does not dominate its use in {use_bb}")));
            }
            _ => {}
        }
        Ok(())
    };

    for &bb in cfg.rpo() {
        for (pos, &inst) in func.block(bb).insts.iter().enumerate() {
            let mut result = Ok(());
            func.inst(inst).kind.for_each_operand(|v| {
                if result.is_ok() {
                    result = check_use(v, bb, pos);
                }
            });
            result?;
        }
        // Terminator operands are uses at the end of the block.
        let end = func.block(bb).insts.len();
        let mut result = Ok(());
        func.terminator(bb).for_each_operand(|v| {
            if result.is_ok() {
                result = check_use(v, bb, end);
            }
        });
        result?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{BinOp, FunctionBuilder, InstKind, Terminator, Type};

    #[test]
    fn accepts_builder_loops() {
        let mut b = FunctionBuilder::new("ok", vec![Type::I64], Type::I64);
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::i64(0)],
            |b, i, c| vec![b.iadd(c[0], i)],
        );
        b.ret(Some(out[0]));
        verify_ssa(&b.finish()).unwrap();
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut f = dae_ir::Function::new("bad", vec![], Type::I64);
        let entry = f.entry;
        // v1 uses v0, but v1 is placed first.
        let v0 = f.create_inst(
            InstKind::Binary { op: BinOp::IAdd, lhs: Value::i64(1), rhs: Value::i64(2) },
            Type::I64,
        );
        let v1 = f.create_inst(
            InstKind::Binary { op: BinOp::IAdd, lhs: Value::Inst(v0), rhs: Value::i64(3) },
            Type::I64,
        );
        f.append_inst(entry, v1);
        f.append_inst(entry, v0);
        f.set_terminator(entry, Terminator::Ret(Some(Value::Inst(v1))));
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("does not dominate"), "{e}");
    }

    #[test]
    fn rejects_cross_branch_use() {
        // A value defined in one branch arm used in the other.
        let mut b = FunctionBuilder::new("cross", vec![Type::Bool], Type::I64);
        let then_bb = b.create_block();
        let else_bb = b.create_block();
        b.branch(Value::Arg(0), then_bb, vec![], else_bb, vec![]);
        b.switch_to(then_bb);
        let defined_in_then = b.iadd(1i64, 2i64);
        b.ret(Some(defined_in_then));
        b.switch_to(else_bb);
        let illegal = b.iadd(defined_in_then, 1i64); // not dominated!
        b.ret(Some(illegal));
        let f = b.finish();
        // Structural verification passes (types fine)…
        dae_ir::verify_function(&f, None).unwrap();
        // …but SSA dominance catches it.
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("does not dominate"), "{e}");
    }

    #[test]
    fn transforms_preserve_ssa() {
        let mut m = dae_ir::Module::new();
        let g = m.add_global("a", Type::F64, 256);
        let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::i64(16), Value::i64(1), |b, i| {
            let gi = b.iadd(Value::Arg(0), i);
            let addr = b.elem_addr(Value::Global(g), gi, Type::F64);
            let v = b.load(Type::F64, addr);
            let w = b.fmul(v, 2.0f64);
            b.store(addr, w);
        });
        b.ret(None);
        let f = b.finish();
        verify_ssa(&f).unwrap();
        let opt = crate::transform::optimize(&f);
        verify_ssa(&opt).unwrap();
        let sr = crate::transform::strength_reduce_and_clean(&f);
        verify_ssa(&sr).unwrap();
    }
}
