//! # dae-analysis — analyses and transforms over `dae-ir`
//!
//! The compiler-infrastructure layer of the CGO 2014 DAE reproduction. It
//! plays the role of LLVM's analysis and transform passes that the paper's
//! access-phase generator builds on:
//!
//! * [`cfg::Cfg`] — successors/predecessors and reverse postorder,
//! * [`dom::DomTree`] — dominators (Cooper–Harvey–Kennedy),
//! * [`loops::LoopForest`] — natural loops, nesting, and
//!   [`loops::recognize_counted`] for `for`-style loops,
//! * [`scev::ScalarEvolution`] — affine forms of values and addresses (the
//!   ScalarEvolution stand-in used to classify tasks as affine/non-affine),
//! * [`usedef::UseDefs`] — def-use chains for the §5.2 mark/sweep slice,
//! * [`effects`] — side-effect summaries and the paper's safety conditions,
//! * [`transform`] — inlining, DCE (instructions *and* block parameters),
//!   CFG simplification, constant folding, and the [`transform::optimize`]
//!   clean-up pipeline.
//!
//! # Examples
//!
//! Classify the memory instructions of a function as affine or not:
//!
//! ```
//! use dae_analysis::{cfg::Cfg, dom::DomTree, loops::LoopForest, scev::ScalarEvolution};
//! use dae_ir::{FunctionBuilder, InstKind, Module, Type, Value};
//!
//! let mut module = Module::new();
//! let a = module.add_global("a", Type::F64, 256);
//! let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::Void);
//! b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
//!     let addr = b.elem_addr(Value::Global(a), i, Type::F64);
//!     let _ = b.load(Type::F64, addr);
//! });
//! b.ret(None);
//! let func = b.finish();
//!
//! let cfg = Cfg::new(&func);
//! let dom = DomTree::new(&func, &cfg);
//! let forest = LoopForest::new(&func, &cfg, &dom);
//! let mut scev = ScalarEvolution::new(&func, &cfg, &dom, &forest);
//!
//! let mut addrs = vec![];
//! func.for_each_placed_inst(|_, i| {
//!     if let InstKind::Load { addr } = func.inst(i).kind {
//!         addrs.push(addr);
//!     }
//! });
//! let affine_loads = addrs.iter().filter(|a| scev.pointer_of(**a).is_some()).count();
//! assert_eq!(affine_loads, 1);
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod dom;
pub mod effects;
pub mod loops;
pub mod scev;
pub mod ssa_verify;
pub mod transform;
pub mod usedef;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use loops::{CountedLoop, LoopForest, LoopId};
pub use scev::{Affine, AffineVar, PtrAffine, ScalarEvolution};
pub use ssa_verify::{verify_ssa, SsaError};
pub use usedef::{UseDefs, UseSite};

/// Bundle of the standard analyses for one function, built in dependency
/// order. Most passes want all of them.
pub struct FunctionAnalysis<'f> {
    /// The analysed function.
    pub func: &'f dae_ir::Function,
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Loop forest.
    pub forest: LoopForest,
}

impl<'f> FunctionAnalysis<'f> {
    /// Runs CFG, dominator and loop analysis on `func`.
    pub fn run(func: &'f dae_ir::Function) -> Self {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(func, &cfg);
        let forest = LoopForest::new(func, &cfg, &dom);
        FunctionAnalysis { func, cfg, dom, forest }
    }

    /// Builds the scalar-evolution engine on top of the bundled analyses.
    pub fn scev(&'f self) -> ScalarEvolution<'f> {
        ScalarEvolution::new(self.func, &self.cfg, &self.dom, &self.forest)
    }
}
