//! CFG simplification: constant-branch folding, block merging, compaction.

use crate::cfg::Cfg;
use dae_ir::{BlockId, Function, InstId, InstKind, Terminator, Value};
use std::collections::HashMap;

/// Rewrites `br true/false, a, b` into an unconditional jump.
/// Returns `true` on change.
pub fn fold_constant_branches(func: &mut Function) -> bool {
    let mut changed = false;
    for bb in func.block_ids().collect::<Vec<_>>() {
        if func.block(bb).term.is_none() {
            continue;
        }
        let new = match func.terminator(bb) {
            Terminator::Branch { cond: Value::ConstBool(true), then_dest, .. } => {
                Some(Terminator::Jump(then_dest.clone()))
            }
            Terminator::Branch { cond: Value::ConstBool(false), else_dest, .. } => {
                Some(Terminator::Jump(else_dest.clone()))
            }
            _ => None,
        };
        if let Some(t) = new {
            func.set_terminator(bb, t);
            changed = true;
        }
    }
    changed
}

/// Merges `b -> s` when `s`'s only predecessor is `b` and `b` ends in an
/// unconditional jump: `s`'s parameters are substituted by the jump
/// arguments, its instructions appended to `b`, and `b` takes `s`'s
/// terminator. Returns `true` on change.
pub fn merge_straightline(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let cfg = Cfg::new(func);
        let mut merged = false;
        for &bb in cfg.rpo() {
            let dest = match func.terminator(bb) {
                Terminator::Jump(d) => d.clone(),
                _ => continue,
            };
            let s = dest.block;
            if s == bb || s == func.entry {
                continue;
            }
            if cfg.preds(s).len() != 1 {
                continue;
            }
            // Substitute s's params with the edge arguments everywhere.
            let subst: HashMap<Value, Value> = dest
                .args
                .iter()
                .enumerate()
                .map(|(i, a)| (Value::BlockParam { block: s, index: i as u32 }, *a))
                .collect();
            if !subst.is_empty() {
                for other in func.block_ids().collect::<Vec<_>>() {
                    let insts = func.block(other).insts.clone();
                    for inst in insts {
                        func.inst_mut(inst)
                            .kind
                            .map_operands(|v| subst.get(&v).copied().unwrap_or(v));
                    }
                    if func.block(other).term.is_some() {
                        func.terminator_mut(other)
                            .map_operands(|v| subst.get(&v).copied().unwrap_or(v));
                    }
                }
            }
            let s_insts = func.block(s).insts.clone();
            let s_term = func.block_mut(s).term.take().expect("terminated");
            func.block_mut(s).insts.clear();
            func.block_mut(s).params.clear();
            // Park the emptied block on a self-loop… no: leave it
            // unreachable with a trivial terminator; compaction drops it.
            func.set_terminator(s, Terminator::Ret(None));
            func.block_mut(bb).insts.extend(s_insts);
            func.set_terminator(bb, s_term);
            merged = true;
            changed = true;
            break; // CFG changed; recompute
        }
        if !merged {
            return changed;
        }
    }
}

/// Rebuilds the function keeping only blocks reachable from the entry and
/// only placed instructions, renumbering both densely (in reverse
/// postorder). Returns the compacted function.
pub fn compact(func: &Function) -> Function {
    let cfg = Cfg::new(func);
    let mut out = Function::new(func.name.clone(), func.params.clone(), func.ret);
    out.is_task = func.is_task;

    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for (i, &bb) in cfg.rpo().iter().enumerate() {
        let nb = if i == 0 { out.entry } else { out.add_block() };
        for &ty in &func.block(bb).params {
            out.add_block_param(nb, ty);
        }
        block_map.insert(bb, nb);
    }

    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    for &bb in cfg.rpo() {
        for &inst in &func.block(bb).insts {
            let ni = out
                .create_inst(InstKind::Prefetch { addr: Value::ConstI64(0) }, func.inst(inst).ty);
            inst_map.insert(inst, ni);
        }
    }
    let map_value = |v: Value| -> Value {
        match v {
            Value::Inst(id) => Value::Inst(inst_map[&id]),
            Value::BlockParam { block, index } => {
                Value::BlockParam { block: block_map[&block], index }
            }
            other => other,
        }
    };
    for &bb in cfg.rpo() {
        let nb = block_map[&bb];
        for &inst in &func.block(bb).insts {
            let mut kind = func.inst(inst).kind.clone();
            kind.map_operands(map_value);
            let ni = inst_map[&inst];
            out.inst_mut(ni).kind = kind;
            out.append_inst(nb, ni);
        }
        let mut term = func.terminator(bb).clone();
        term.map_operands(map_value);
        for dest in term.successors_mut() {
            dest.block = block_map[&dest.block];
        }
        out.set_terminator(nb, term);
    }
    out
}

/// Redirects edges through empty forwarding blocks (no instructions, jump
/// terminator) and returns `true` on change. Parameters of the forwarder are
/// forwarded positionally.
pub fn skip_trivial_blocks(func: &mut Function) -> bool {
    // A trivial forwarder: no insts, terminator Jump(t, args) where args are
    // exactly its own params in order, and t != itself.
    let mut forward: HashMap<BlockId, BlockId> = HashMap::new();
    for bb in func.block_ids() {
        if bb == func.entry || !func.block(bb).insts.is_empty() {
            continue;
        }
        if let Terminator::Jump(dest) = func.terminator(bb) {
            if dest.block == bb {
                continue;
            }
            let n = func.block(bb).params.len();
            let forwards_params = dest.args.len() == n
                && dest
                    .args
                    .iter()
                    .enumerate()
                    .all(|(i, a)| *a == Value::BlockParam { block: bb, index: i as u32 })
                && func.block(dest.block).params.len() == n;
            if forwards_params {
                forward.insert(bb, dest.block);
            }
        }
    }
    if forward.is_empty() {
        return false;
    }
    let resolve = |mut b: BlockId| -> BlockId {
        let mut hops = 0;
        while let Some(&n) = forward.get(&b) {
            b = n;
            hops += 1;
            if hops > forward.len() {
                break; // cycle of forwarders; leave as-is
            }
        }
        b
    };
    let mut changed = false;
    for bb in func.block_ids().collect::<Vec<_>>() {
        if func.block(bb).term.is_none() {
            continue;
        }
        let term = func.terminator_mut(bb);
        for dest in term.successors_mut() {
            let target = resolve(dest.block);
            if target != dest.block {
                dest.block = target;
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{verify_function, CmpOp, FunctionBuilder, Type};

    #[test]
    fn folds_constant_branch() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let v = b.if_then_else(
            Value::ConstBool(true),
            vec![Type::I64],
            |_| vec![Value::i64(1)],
            |_| vec![Value::i64(2)],
        );
        b.ret(Some(v[0]));
        let mut f = b.finish();
        assert!(fold_constant_branches(&mut f));
        let f = compact(&f);
        verify_function(&f, None).unwrap();
        // else arm unreachable and dropped
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    fn merges_chain_after_fold() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let v = b.if_then_else(
            Value::ConstBool(false),
            vec![Type::I64],
            |_| vec![Value::i64(1)],
            |_| vec![Value::i64(2)],
        );
        b.ret(Some(v[0]));
        let mut f = b.finish();
        fold_constant_branches(&mut f);
        let mut f = compact(&f);
        assert!(merge_straightline(&mut f));
        let f = compact(&f);
        verify_function(&f, None).unwrap();
        assert_eq!(f.num_blocks(), 1, "{}", dae_ir::print_function(&f, None));
        match f.terminator(f.entry) {
            Terminator::Ret(Some(v)) => assert_eq!(*v, Value::i64(2)),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn compact_drops_unreachable() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let dead = b.create_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let f = compact(&f);
        assert_eq!(f.num_blocks(), 1);
        verify_function(&f, None).unwrap();
    }

    #[test]
    fn compact_preserves_loop_semantics() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::i64(0)],
            |b, i, c| vec![b.iadd(c[0], i)],
        );
        b.ret(Some(out[0]));
        let f = b.finish();
        let g = compact(&f);
        verify_function(&g, None).unwrap();
        assert_eq!(g.num_blocks(), 4);
        assert_eq!(g.placed_inst_count(), f.placed_inst_count());
    }

    #[test]
    fn merge_respects_multi_pred_targets() {
        // A join block with two preds must not be merged into either.
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
        let c = b.cmp(CmpOp::Gt, Value::Arg(0), 0i64);
        let v =
            b.if_then_else(c, vec![Type::I64], |_| vec![Value::i64(1)], |_| vec![Value::i64(2)]);
        b.ret(Some(v[0]));
        let mut f = b.finish();
        // The arms are each single-pred, empty, and jump to the join — but the
        // join has 2 preds, so only arm→join merges are structurally blocked;
        // entry→arm merges are blocked because entry ends in a branch.
        assert!(!merge_straightline(&mut f));
        verify_function(&f, None).unwrap();
    }

    #[test]
    fn skip_trivial_blocks_reroutes() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::Void);
        // entry -> fwd -> target; fwd is empty.
        let fwd = b.create_block();
        let target = b.create_block();
        b.jump(fwd, vec![]);
        b.switch_to(fwd);
        b.jump(target, vec![]);
        b.switch_to(target);
        b.ret(None);
        let mut f = b.finish();
        assert!(skip_trivial_blocks(&mut f));
        let f = compact(&f);
        assert_eq!(f.num_blocks(), 2);
        verify_function(&f, None).unwrap();
    }
}
