//! Function inlining.
//!
//! Step 1 of the paper's access-generation algorithm (§5.2.2): *"Inline
//! function calls in the task, when possible. If any function calls cannot
//! be inlined, we do not generate an access version."* In this IR the only
//! non-inlinable calls are (mutually) recursive ones.

use crate::effects::is_fully_inlinable;
use dae_ir::{
    BlockCall, BlockId, FuncId, Function, InstId, InstKind, Module, Terminator, Type, Value,
};
use std::collections::HashMap;
use std::fmt;

/// Why inlining was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InlineError {
    /// The call graph reachable from the function contains a cycle.
    Recursive(String),
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::Recursive(name) => {
                write!(f, "function `{name}` has recursive calls and cannot be fully inlined")
            }
        }
    }
}

impl std::error::Error for InlineError {}

/// Returns a copy of `module.func(func)` with **all** calls (transitively)
/// inlined.
///
/// # Errors
///
/// Returns [`InlineError::Recursive`] when the reachable call graph is
/// cyclic, mirroring the paper's refusal condition.
pub fn inline_all(module: &Module, func: FuncId) -> Result<Function, InlineError> {
    if !is_fully_inlinable(module, func) {
        return Err(InlineError::Recursive(module.func(func).name.clone()));
    }
    let mut f = module.func(func).clone();
    // Each inlining step removes one call and may introduce the callee's
    // calls; acyclicity guarantees termination.
    while let Some((bb, pos, inst)) = find_first_call(&f) {
        inline_one(module, &mut f, bb, pos, inst);
    }
    Ok(f)
}

fn find_first_call(f: &Function) -> Option<(BlockId, usize, InstId)> {
    for bb in f.block_ids() {
        for (pos, &inst) in f.block(bb).insts.iter().enumerate() {
            if matches!(f.inst(inst).kind, InstKind::Call { .. }) {
                return Some((bb, pos, inst));
            }
        }
    }
    None
}

fn map_value(
    args: &[Value],
    block_map: &HashMap<BlockId, BlockId>,
    inst_map: &HashMap<InstId, InstId>,
    v: Value,
) -> Value {
    match v {
        Value::Arg(i) => args[i as usize],
        Value::Inst(id) => Value::Inst(inst_map[&id]),
        Value::BlockParam { block, index } => Value::BlockParam { block: block_map[&block], index },
        other => other,
    }
}

fn inline_one(module: &Module, f: &mut Function, bb: BlockId, pos: usize, call: InstId) {
    let (callee, args) = match f.inst(call).kind.clone() {
        InstKind::Call { callee, args } => (callee, args),
        _ => unreachable!("inline_one called on non-call"),
    };
    let g = module.func(callee);
    assert!(g.block(g.entry).params.is_empty(), "callee entry block must not take parameters");

    // Continuation: holds everything after the call, receives the return
    // value as a block parameter.
    let cont = f.add_block();
    let ret_param = if g.ret != Type::Void { Some(f.add_block_param(cont, g.ret)) } else { None };
    let tail: Vec<InstId> = f.block(bb).insts[pos + 1..].to_vec();
    f.block_mut(bb).insts.truncate(pos); // also drops the call itself
    f.block_mut(cont).insts = tail;
    let old_term = f.block_mut(bb).term.take().expect("caller block terminated");
    f.set_terminator(cont, old_term);

    // Clone callee blocks and allocate parameter lists.
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for gb in g.block_ids() {
        let nb = f.add_block();
        for &ty in &g.block(gb).params {
            f.add_block_param(nb, ty);
        }
        block_map.insert(gb, nb);
    }

    // Allocate instruction slots first so operands can reference forward.
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    for gb in g.block_ids() {
        for &gi in &g.block(gb).insts {
            let placeholder =
                f.create_inst(InstKind::Prefetch { addr: Value::ConstI64(0) }, g.inst(gi).ty);
            inst_map.insert(gi, placeholder);
        }
    }
    // Fill bodies.
    for gb in g.block_ids() {
        let nb = block_map[&gb];
        for &gi in &g.block(gb).insts {
            let mut kind = g.inst(gi).kind.clone();
            kind.map_operands(|v| map_value(&args, &block_map, &inst_map, v));
            let ni = inst_map[&gi];
            f.inst_mut(ni).kind = kind;
            f.append_inst(nb, ni);
        }
        let term = match g.terminator(gb) {
            Terminator::Ret(v) => {
                let mut call_args = Vec::new();
                if let Some(v) = v {
                    let mapped = map_value(&args, &block_map, &inst_map, *v);
                    if ret_param.is_some() {
                        call_args.push(mapped);
                    }
                }
                Terminator::Jump(BlockCall::with_args(cont, call_args))
            }
            other => {
                let mut t = other.clone();
                t.map_operands(|v| map_value(&args, &block_map, &inst_map, v));
                for dest in t.successors_mut() {
                    dest.block = block_map[&dest.block];
                }
                t
            }
        };
        f.set_terminator(nb, term);
    }

    // Enter the inlined body.
    f.set_terminator(bb, Terminator::Jump(BlockCall::new(block_map[&g.entry])));

    // Redirect uses of the call's result to the continuation parameter.
    if let Some(rp) = ret_param {
        let target = Value::Inst(call);
        for b in f.block_ids().collect::<Vec<_>>() {
            let insts = f.block(b).insts.clone();
            for i in insts {
                f.inst_mut(i).kind.map_operands(|v| if v == target { rp } else { v });
            }
            if f.block(b).term.is_some() {
                f.terminator_mut(b).map_operands(|v| if v == target { rp } else { v });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{verify_function, CmpOp, FunctionBuilder};

    #[test]
    fn inlines_leaf_call() {
        let mut m = Module::new();
        let mut cb = FunctionBuilder::new("twice", vec![Type::I64], Type::I64);
        let d = cb.imul(Value::Arg(0), 2i64);
        cb.ret(Some(d));
        let callee = m.add_function(cb.finish());

        let mut b = FunctionBuilder::new("top", vec![Type::I64], Type::I64);
        let c = b.call(callee, vec![Value::Arg(0)], Type::I64).unwrap();
        let r = b.iadd(c, 1i64);
        b.ret(Some(r));
        let top = m.add_function(b.finish());

        let inlined = inline_all(&m, top).unwrap();
        verify_function(&inlined, Some(&m)).unwrap();
        let mut has_call = false;
        inlined.for_each_placed_inst(|_, i| {
            has_call |= matches!(inlined.inst(i).kind, InstKind::Call { .. });
        });
        assert!(!has_call, "call should be gone:\n{}", dae_ir::print_function(&inlined, Some(&m)));
    }

    #[test]
    fn inlines_transitively() {
        let mut m = Module::new();
        let mut l = FunctionBuilder::new("leaf", vec![Type::I64], Type::I64);
        let v = l.iadd(Value::Arg(0), 10i64);
        l.ret(Some(v));
        let leaf = m.add_function(l.finish());

        let mut mid = FunctionBuilder::new("mid", vec![Type::I64], Type::I64);
        let v = mid.call(leaf, vec![Value::Arg(0)], Type::I64).unwrap();
        let v2 = mid.imul(v, 3i64);
        mid.ret(Some(v2));
        let mid = m.add_function(mid.finish());

        let mut top = FunctionBuilder::new("top", vec![Type::I64], Type::I64);
        let a = top.call(mid, vec![Value::Arg(0)], Type::I64).unwrap();
        let b = top.call(leaf, vec![a], Type::I64).unwrap();
        top.ret(Some(b));
        let top = m.add_function(top.finish());

        let inlined = inline_all(&m, top).unwrap();
        verify_function(&inlined, Some(&m)).unwrap();
        let mut calls = 0;
        inlined.for_each_placed_inst(|_, i| {
            calls += matches!(inlined.inst(i).kind, InstKind::Call { .. }) as usize;
        });
        assert_eq!(calls, 0);
    }

    #[test]
    fn inlines_callee_with_control_flow() {
        let mut m = Module::new();
        let mut cb = FunctionBuilder::new("abs", vec![Type::I64], Type::I64);
        let neg = cb.cmp(CmpOp::Lt, Value::Arg(0), 0i64);
        let v = cb.if_then_else(
            neg,
            vec![Type::I64],
            |b| vec![b.isub(0i64, Value::Arg(0))],
            |_| vec![Value::Arg(0)],
        );
        cb.ret(Some(v[0]));
        let callee = m.add_function(cb.finish());

        let mut b = FunctionBuilder::new("top", vec![Type::I64], Type::I64);
        let c = b.call(callee, vec![Value::Arg(0)], Type::I64).unwrap();
        b.ret(Some(c));
        let top = m.add_function(b.finish());

        let inlined = inline_all(&m, top).unwrap();
        verify_function(&inlined, Some(&m)).unwrap();
        // entry + cont + 4 callee blocks
        assert!(inlined.num_blocks() >= 6);
    }

    #[test]
    fn refuses_recursion() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("r", vec![], Type::Void);
        b.call(FuncId(0), vec![], Type::Void);
        b.ret(None);
        let r = m.add_function(b.finish());
        let e = inline_all(&m, r).unwrap_err();
        assert!(matches!(e, InlineError::Recursive(_)));
        assert!(e.to_string().contains("recursive"));
    }

    #[test]
    fn void_callee_with_store() {
        let mut m = Module::new();
        let g = m.add_global("out", Type::I64, 4);
        let mut cb = FunctionBuilder::new("write1", vec![Type::I64], Type::Void);
        let addr = cb.elem_addr(Value::Global(g), Value::Arg(0), Type::I64);
        cb.store(addr, 1i64);
        cb.ret(None);
        let callee = m.add_function(cb.finish());

        let mut b = FunctionBuilder::new("top", vec![], Type::Void);
        b.call(callee, vec![Value::i64(2)], Type::Void);
        b.ret(None);
        let top = m.add_function(b.finish());

        let inlined = inline_all(&m, top).unwrap();
        verify_function(&inlined, Some(&m)).unwrap();
        let mut stores = 0;
        inlined.for_each_placed_inst(|_, i| {
            stores += matches!(inlined.inst(i).kind, InstKind::Store { .. }) as usize;
        });
        assert_eq!(stores, 1);
    }
}
