//! Dead-code elimination, including dead block parameters.
//!
//! The paper's step 6 (§5.2.2): *"discard all unmarked instructions.
//! Followed by dead code elimination, this step removes unnecessary
//! computations and branches."* After the slicer drops loads/stores, large
//! chains of address arithmetic and loop-carried state become dead; this
//! pass removes them, including loop-carried block parameters whose only use
//! was feeding themselves around the back edge.

use dae_ir::{BlockId, Function, InstId, Value};
use std::collections::HashSet;

/// Removes instructions whose results are unused and that have no side
/// effects. Returns `true` if anything was removed.
pub fn eliminate_dead_insts(func: &mut Function) -> bool {
    // Liveness over instructions and block parameters.
    let mut live_insts: HashSet<InstId> = HashSet::new();
    let mut live_params: HashSet<(BlockId, u32)> = HashSet::new();
    let mut work: Vec<Value> = Vec::new();

    let touch = |v: Value, work: &mut Vec<Value>| {
        if !v.is_const() {
            work.push(v);
        }
    };

    // Roots: side-effecting instructions and terminator conditions/returns.
    // Edge arguments are *not* roots: they are live only if the target param
    // is live.
    for bb in func.block_ids() {
        for &inst in &func.block(bb).insts {
            if func.inst(inst).kind.has_side_effects() {
                live_insts.insert(inst);
                func.inst(inst).kind.for_each_operand(|v| touch(v, &mut work));
            }
        }
        match func.terminator(bb) {
            dae_ir::Terminator::Branch { cond, .. } => touch(*cond, &mut work),
            dae_ir::Terminator::Ret(Some(v)) => touch(*v, &mut work),
            _ => {}
        }
    }

    while let Some(v) = work.pop() {
        match v {
            Value::Inst(id) if live_insts.insert(id) => {
                func.inst(id).kind.for_each_operand(|o| touch(o, &mut work));
            }
            Value::BlockParam { block, index } if live_params.insert((block, index)) => {
                // The matching argument on every incoming edge is live.
                for pred in func.block_ids().collect::<Vec<_>>() {
                    if func.block(pred).term.is_none() {
                        continue;
                    }
                    for dest in func.terminator(pred).successors() {
                        if dest.block == block {
                            if let Some(a) = dest.args.get(index as usize) {
                                touch(*a, &mut work);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    let mut changed = false;
    for bb in func.block_ids().collect::<Vec<_>>() {
        let before = func.block(bb).insts.len();
        func.block_mut(bb).insts.retain(|i| live_insts.contains(i));
        changed |= func.block(bb).insts.len() != before;
    }
    changed |= remove_dead_params(func, &live_params);
    changed
}

/// Drops block parameters not in `live_params`, compacting indices and
/// rewriting every use and every incoming edge.
fn remove_dead_params(func: &mut Function, live_params: &HashSet<(BlockId, u32)>) -> bool {
    // Per-block old-index → new-index maps (None = dropped).
    let blocks: Vec<BlockId> = func.block_ids().collect();
    let mut remap: Vec<Vec<Option<u32>>> = Vec::with_capacity(blocks.len());
    let mut any = false;
    for &bb in &blocks {
        let n = func.block(bb).params.len();
        let mut map = Vec::with_capacity(n);
        let mut next = 0u32;
        for i in 0..n {
            if live_params.contains(&(bb, i as u32)) {
                map.push(Some(next));
                next += 1;
            } else {
                map.push(None);
                any = true;
            }
        }
        remap.push(map);
    }
    if !any {
        return false;
    }

    // Rewrite parameter lists.
    for (k, &bb) in blocks.iter().enumerate() {
        let old = func.block(bb).params.clone();
        let new: Vec<_> = old
            .iter()
            .enumerate()
            .filter(|(i, _)| remap[k][*i].is_some())
            .map(|(_, t)| *t)
            .collect();
        func.block_mut(bb).params = new;
    }

    // Rewrite uses of surviving params and edge argument lists.
    let rewrite = |remap: &Vec<Vec<Option<u32>>>, v: Value| -> Value {
        if let Value::BlockParam { block, index } = v {
            if let Some(new_index) = remap[block.0 as usize][index as usize] {
                return Value::BlockParam { block, index: new_index };
            }
            // Uses of dead params only survive inside dead instructions,
            // which have already been removed; edges are rebuilt below.
        }
        v
    };
    for &bb in &blocks {
        let insts = func.block(bb).insts.clone();
        for i in insts {
            func.inst_mut(i).kind.map_operands(|v| rewrite(&remap, v));
        }
        if func.block(bb).term.is_some() {
            // First drop dead edge args, then renumber param references.
            let term = func.terminator_mut(bb);
            for dest in term.successors_mut() {
                let keep = &remap[dest.block.0 as usize];
                let mut new_args = Vec::with_capacity(dest.args.len());
                for (i, a) in dest.args.iter().enumerate() {
                    if keep.get(i).copied().flatten().is_some() {
                        new_args.push(*a);
                    }
                }
                dest.args = new_args;
            }
            term.map_operands(|v| rewrite(&remap, v));
        }
    }
    true
}

/// Runs [`eliminate_dead_insts`] to a fixpoint (param removal can expose
/// newly-dead instructions and vice versa).
pub fn dce_fixpoint(func: &mut Function) -> bool {
    let mut changed = false;
    while eliminate_dead_insts(func) {
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{verify_function, FunctionBuilder, Type};

    #[test]
    fn removes_unused_arithmetic() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
        let used = b.iadd(Value::Arg(0), 1i64);
        let _dead = b.imul(Value::Arg(0), 100i64);
        let _dead2 = b.imul(Value::Arg(0), 200i64);
        b.ret(Some(used));
        let mut f = b.finish();
        assert!(dce_fixpoint(&mut f));
        verify_function(&f, None).unwrap();
        assert_eq!(f.placed_inst_count(), 1);
    }

    #[test]
    fn keeps_side_effects() {
        let mut m = dae_ir::Module::new();
        let g = m.add_global("g", Type::I64, 1);
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let a = b.ptr_add(Value::Global(g), 0i64);
        b.store(a, 7i64);
        b.ret(None);
        let mut f = b.finish();
        dce_fixpoint(&mut f);
        verify_function(&f, None).unwrap();
        assert_eq!(f.placed_inst_count(), 2); // ptradd + store
    }

    #[test]
    fn removes_dead_loop_carried_param() {
        // A loop that carries an accumulator nobody reads after the loop.
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::Void);
        let _sums = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::i64(0)],
            |b, i, c| vec![b.iadd(c[0], i)],
        );
        b.ret(None);
        let mut f = b.finish();
        assert!(dce_fixpoint(&mut f));
        verify_function(&f, None).unwrap();
        // The accumulator param and its add are gone; the IV machinery stays.
        let total_params: usize = f.block_ids().map(|bb| f.block(bb).params.len()).sum();
        assert_eq!(total_params, 1, "only the IV should remain");
        let mut adds = 0;
        f.for_each_placed_inst(|_, i| {
            adds += matches!(f.inst(i).kind, dae_ir::InstKind::Binary { .. }) as usize;
        });
        assert_eq!(adds, 1, "only the IV increment should remain");
    }

    #[test]
    fn keeps_live_loop_carried_param() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
        let sums = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::i64(0)],
            |b, i, c| vec![b.iadd(c[0], i)],
        );
        b.ret(Some(sums[0]));
        let mut f = b.finish();
        dce_fixpoint(&mut f);
        verify_function(&f, None).unwrap();
        let total_params: usize = f.block_ids().map(|bb| f.block(bb).params.len()).sum();
        assert_eq!(total_params, 3, "IV + carried in header + carried in exit");
    }

    #[test]
    fn self_feeding_dead_cycle_is_removed() {
        // x' = x + 1 carried around the loop, never observed: the classic
        // case where naive use-counting fails (the param uses itself).
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::Void);
        b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::i64(5)],
            |b, _, c| vec![b.iadd(c[0], 1i64)],
        );
        b.ret(None);
        let mut f = b.finish();
        dce_fixpoint(&mut f);
        verify_function(&f, None).unwrap();
        let total_params: usize = f.block_ids().map(|bb| f.block(bb).params.len()).sum();
        assert_eq!(total_params, 1);
    }

    #[test]
    fn prefetch_is_a_root() {
        let mut m = dae_ir::Module::new();
        let g = m.add_global("g", Type::F64, 64);
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::Void);
        let addr = b.elem_addr(Value::Global(g), Value::Arg(0), Type::F64);
        b.prefetch(addr);
        b.ret(None);
        let mut f = b.finish();
        dce_fixpoint(&mut f);
        assert_eq!(f.placed_inst_count(), 3); // imul + ptradd + prefetch
    }
}
