//! IR-to-IR transforms: inlining, DCE, CFG simplification, constant folding.

pub mod constfold;
pub mod dce;
pub mod inline;
pub mod simplify;
pub mod strength;

pub use constfold::fold_constants;
pub use dce::{dce_fixpoint, eliminate_dead_insts};
pub use inline::{inline_all, InlineError};
pub use simplify::{compact, fold_constant_branches, merge_straightline, skip_trivial_blocks};
pub use strength::{strength_reduce, strength_reduce_and_clean};

use dae_ir::Function;

/// The clean-up pipeline run on generated access phases — the stand-in for
/// the paper's final `-O3` over the access version (§5.2.1): constant
/// folding, branch folding, dead-code elimination, block merging and
/// compaction, iterated to a fixpoint.
pub fn optimize(func: &Function) -> Function {
    let mut f = compact(func);
    loop {
        let mut changed = false;
        changed |= fold_constants(&mut f);
        changed |= fold_constant_branches(&mut f);
        changed |= skip_trivial_blocks(&mut f);
        changed |= dce_fixpoint(&mut f);
        changed |= merge_straightline(&mut f);
        f = compact(&f);
        if !changed {
            return f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{verify_function, CmpOp, FunctionBuilder, Type, Value};

    #[test]
    fn optimize_collapses_constant_diamond() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let c = b.cmp(CmpOp::Lt, 3i64, 5i64);
        let v =
            b.if_then_else(c, vec![Type::I64], |_| vec![Value::i64(1)], |_| vec![Value::i64(2)]);
        b.ret(Some(v[0]));
        let f = optimize(&b.finish());
        verify_function(&f, None).unwrap();
        assert_eq!(f.num_blocks(), 1, "{}", dae_ir::print_function(&f, None));
        assert_eq!(f.placed_inst_count(), 0);
    }

    #[test]
    fn optimize_keeps_loops_intact() {
        let mut m = dae_ir::Module::new();
        let g = m.add_global("a", Type::F64, 64);
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let addr = b.elem_addr(Value::Global(g), i, Type::F64);
            b.prefetch(addr);
        });
        b.ret(None);
        let before = b.finish();
        let f = optimize(&before);
        verify_function(&f, None).unwrap();
        let mut prefetches = 0;
        f.for_each_placed_inst(|_, i| {
            prefetches += matches!(f.inst(i).kind, dae_ir::InstKind::Prefetch { .. }) as usize;
        });
        assert_eq!(prefetches, 1);
        assert!(f.num_blocks() >= 3, "loop structure must survive");
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
        let x = b.iadd(Value::Arg(0), 0i64);
        let y = b.imul(x, 1i64);
        b.ret(Some(y));
        let once = optimize(&b.finish());
        let twice = optimize(&once);
        assert_eq!(dae_ir::print_function(&once, None), dae_ir::print_function(&twice, None));
    }
}
