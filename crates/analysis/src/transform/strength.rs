//! Strength reduction: rewriting per-iteration multiplies into derived
//! induction variables.
//!
//! Address computations like `A[i·N + j]` naively cost an `imul` (and an
//! `iadd` and a `ptradd`) every iteration. Production compilers rewrite
//! these as *derived induction variables* that advance by a constant step —
//! which is precisely why the paper's access phases, "derived … after
//! applying traditional compiler optimizations to the original (execute)
//! code", are lean streams of prefetches. This pass provides that
//! capability for both execute and access phases:
//!
//! for every counted loop and every integer/pointer-typed instruction in its
//! body whose value is an **affine** function of the loop's IV (coefficient
//! `c`) and of loop-invariant terms, the instruction is replaced by a new
//! loop-carried block parameter initialised in the preheader and advanced
//! by `c·step` on the back edge.

use crate::loops::{recognize_counted, LoopId};
use crate::scev::{Affine, AffineVar};
use crate::FunctionAnalysis;
use dae_ir::{BinOp, BlockId, Function, InstId, InstKind, Terminator, Type, Value};
use std::collections::HashMap;

/// One rewrite candidate discovered during analysis.
struct Candidate {
    inst: InstId,
    /// The instruction's affine form.
    affine: Affine,
    /// The loop whose IV we reduce over.
    lp: LoopId,
    /// Coefficient of that loop's IV.
    coeff: i64,
    /// `true` when the value is a pointer (PtrAdd from a global base).
    ptr_base: Option<dae_ir::GlobalId>,
}

/// Emits IR computing `affine` evaluated with the given IV substitution
/// available: every [`AffineVar::Iv`] must be resolvable through
/// `iv_values`, every parameter through `Value::Arg`.
fn emit_affine(
    func: &mut Function,
    block: BlockId,
    affine: &Affine,
    iv_values: &HashMap<LoopId, Value>,
) -> Option<Value> {
    let mut acc = Value::i64(affine.constant);
    let mut acc_is_const = true;
    let add_term =
        |func: &mut Function, acc: &mut Value, acc_is_const: &mut bool, v: Value, c: i64| {
            let scaled = if c == 1 {
                v
            } else {
                let m = func.create_inst(
                    InstKind::Binary { op: BinOp::IMul, lhs: v, rhs: Value::i64(c) },
                    Type::I64,
                );
                func.append_inst(block, m);
                Value::Inst(m)
            };
            if *acc_is_const && acc.as_i64() == Some(0) {
                *acc = scaled;
            } else {
                let a = func.create_inst(
                    InstKind::Binary { op: BinOp::IAdd, lhs: *acc, rhs: scaled },
                    Type::I64,
                );
                func.append_inst(block, a);
                *acc = Value::Inst(a);
            }
            *acc_is_const = false;
        };
    for var in affine.vars() {
        let c = affine.coeff(var);
        match var {
            AffineVar::Param(p) => add_term(func, &mut acc, &mut acc_is_const, Value::Arg(p), c),
            AffineVar::Iv(l) => {
                let v = *iv_values.get(&l)?;
                add_term(func, &mut acc, &mut acc_is_const, v, c)
            }
        }
    }
    Some(acc)
}

/// Runs strength reduction on `func`. Returns `true` on change.
///
/// Only instructions directly computing an `imul`, or a `ptradd` whose
/// offset contains a multiply, are rewritten — pure adds are already cheap.
pub fn strength_reduce(func: &mut Function) -> bool {
    // Analysis snapshot (invalidated by our edits; we gather all candidates
    // first, then rewrite).
    let analysis = FunctionAnalysis::run(func);
    let mut scev = analysis.scev();

    // Counted-loop info per loop (header, iv value, init value, step).
    struct LoopCtx {
        header: BlockId,
        entry_preds: Vec<BlockId>,
        latches: Vec<BlockId>,
        init_affine: Affine,
        step: i64,
    }
    let mut loops: HashMap<LoopId, LoopCtx> = HashMap::new();
    for (id, l) in analysis.forest.loops() {
        if let Some(c) = recognize_counted(func, &analysis.cfg, &analysis.forest, id) {
            let Some(init_affine) = scev.affine_of(c.init) else { continue };
            let entry_preds: Vec<BlockId> = analysis
                .cfg
                .preds(l.header)
                .iter()
                .copied()
                .filter(|p| !l.latches.contains(p))
                .collect();
            if entry_preds.len() != 1 {
                continue; // keep it simple: single-entry loops only
            }
            loops.insert(
                id,
                LoopCtx {
                    header: l.header,
                    entry_preds,
                    latches: l.latches.clone(),
                    init_affine,
                    step: c.step,
                },
            );
        }
    }
    if loops.is_empty() {
        return false;
    }

    // Candidates: multiplies (or global-based ptradds with a multiply in the
    // offset) inside a counted loop whose value is affine with a non-zero
    // IV coefficient for that loop.
    let mut candidates: Vec<Candidate> = Vec::new();
    for bb in func.block_ids() {
        let Some(lp) = analysis.forest.innermost(bb) else { continue };
        if !loops.contains_key(&lp) {
            continue;
        }
        for &inst in &func.block(bb).insts {
            let (is_mul, ptr_base) = match &func.inst(inst).kind {
                InstKind::Binary { op: BinOp::IMul, .. } => (true, None),
                InstKind::PtrAdd { base: Value::Global(g), offset } => {
                    // only worth it if the offset chain contains a multiply
                    let has_mul = matches!(
                        offset,
                        Value::Inst(o) if matches!(func.inst(*o).kind, InstKind::Binary { op: BinOp::IMul, .. } | InstKind::Binary { op: BinOp::IAdd, .. })
                    );
                    (has_mul, Some(*g))
                }
                _ => (false, None),
            };
            if !is_mul {
                continue;
            }
            let affine = if ptr_base.is_some() {
                match scev.pointer_of(Value::Inst(inst)) {
                    Some(p) => p.offset,
                    None => continue,
                }
            } else {
                match scev.affine_of(Value::Inst(inst)) {
                    Some(a) => a,
                    None => continue,
                }
            };
            let coeff = affine.coeff(AffineVar::Iv(lp));
            if coeff == 0 {
                continue;
            }
            // Every *other* IV in the form must belong to an enclosing loop
            // (so its header param is in scope at the preheader).
            let nest = analysis.forest.nest_of(bb);
            if !affine.vars().all(|v| match v {
                AffineVar::Iv(l) => nest.contains(&l),
                AffineVar::Param(_) => true,
            }) {
                continue;
            }
            candidates.push(Candidate { inst, affine, lp, coeff, ptr_base });
        }
    }
    if candidates.is_empty() {
        return false;
    }

    // IV value per loop = its recognised header parameter.
    let mut iv_values: HashMap<LoopId, Value> = HashMap::new();
    for (id, _) in analysis.forest.loops() {
        if let Some(c) = recognize_counted(func, &analysis.cfg, &analysis.forest, id) {
            iv_values.insert(id, c.iv);
        }
    }

    let mut changed = false;
    for cand in candidates {
        let ctx = &loops[&cand.lp];

        // Entry value: the affine form with this loop's IV replaced by its
        // init expression, emitted in the (unique) entry predecessor.
        let init_sub = cand.affine.substitute(AffineVar::Iv(cand.lp), &ctx.init_affine);
        let pred = ctx.entry_preds[0];
        let Some(entry_int) = emit_affine(func, pred, &init_sub, &iv_values) else { continue };
        let (param_ty, entry_val) = match cand.ptr_base {
            Some(g) => {
                let p = func.create_inst(
                    InstKind::PtrAdd { base: Value::Global(g), offset: entry_int },
                    Type::Ptr,
                );
                func.append_inst(pred, p);
                (Type::Ptr, Value::Inst(p))
            }
            None => (Type::I64, entry_int),
        };

        // New derived-IV block parameter.
        let dv = func.add_block_param(ctx.header, param_ty);

        // Entry edge argument.
        match func.terminator_mut(pred) {
            Terminator::Jump(d) if d.block == ctx.header => d.args.push(entry_val),
            Terminator::Branch { then_dest, else_dest, .. } => {
                if then_dest.block == ctx.header {
                    then_dest.args.push(entry_val);
                }
                if else_dest.block == ctx.header {
                    else_dest.args.push(entry_val);
                }
            }
            _ => continue,
        }

        // Back-edge arguments: dv + coeff·step.
        let delta = cand.coeff * ctx.step;
        for &latch in &ctx.latches {
            let next = match param_ty {
                Type::Ptr => func.create_inst(
                    InstKind::PtrAdd { base: dv, offset: Value::i64(delta) },
                    Type::Ptr,
                ),
                _ => func.create_inst(
                    InstKind::Binary { op: BinOp::IAdd, lhs: dv, rhs: Value::i64(delta) },
                    Type::I64,
                ),
            };
            func.append_inst(latch, next);
            match func.terminator_mut(latch) {
                Terminator::Jump(d) if d.block == ctx.header => d.args.push(Value::Inst(next)),
                Terminator::Branch { then_dest, else_dest, .. } => {
                    if then_dest.block == ctx.header {
                        then_dest.args.push(Value::Inst(next));
                    }
                    if else_dest.block == ctx.header {
                        else_dest.args.push(Value::Inst(next));
                    }
                }
                _ => {}
            }
        }

        // Redirect all uses of the original instruction to the derived IV.
        let target = Value::Inst(cand.inst);
        for bb in func.block_ids().collect::<Vec<_>>() {
            let insts = func.block(bb).insts.clone();
            for i in insts {
                func.inst_mut(i).kind.map_operands(|v| if v == target { dv } else { v });
            }
            if func.block(bb).term.is_some() {
                func.terminator_mut(bb).map_operands(|v| if v == target { dv } else { v });
            }
        }
        changed = true;
    }
    changed
}

/// Convenience: strength reduction followed by the standard clean-up
/// pipeline (drops the now-dead multiplies).
pub fn strength_reduce_and_clean(func: &Function) -> Function {
    let mut f = crate::transform::compact(func);
    // One round is enough for the patterns the builder generates; a second
    // round catches derived IVs exposed by the first.
    for _ in 0..2 {
        if !strength_reduce(&mut f) {
            break;
        }
        f = crate::transform::optimize(&f);
    }
    crate::transform::optimize(&f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{verify_function, FunctionBuilder};

    fn count_muls(f: &Function) -> usize {
        let mut n = 0;
        f.for_each_placed_inst(|_, i| {
            n += matches!(f.inst(i).kind, InstKind::Binary { op: BinOp::IMul, .. }) as usize;
        });
        n
    }

    #[test]
    fn removes_mul_from_streaming_loop() {
        let mut m = dae_ir::Module::new();
        let g = m.add_global("a", Type::F64, 1024);
        let mut b = FunctionBuilder::new("s", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let addr = b.elem_addr(Value::Global(g), i, Type::F64);
            let v = b.load(Type::F64, addr);
            let w = b.fadd(v, 1.0f64);
            b.store(addr, w);
        });
        b.ret(None);
        let f = b.finish();
        assert_eq!(count_muls(&f), 1);
        let out = strength_reduce_and_clean(&f);
        verify_function(&out, None).unwrap();
        assert_eq!(count_muls(&out), 0, "{}", dae_ir::print_function(&out, None));
    }

    #[test]
    fn semantics_preserved_in_interpreterless_check() {
        // Structural check: loop still there, stores still there, derived
        // pointer parameter present.
        let mut m = dae_ir::Module::new();
        let g = m.add_global("a", Type::F64, 64);
        let mut b = FunctionBuilder::new("s", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let addr = b.elem_addr(Value::Global(g), i, Type::F64);
            b.store(addr, 1.5f64);
        });
        b.ret(None);
        let out = strength_reduce_and_clean(&b.finish());
        verify_function(&out, None).unwrap();
        let mut stores = 0;
        out.for_each_placed_inst(|_, i| {
            stores += matches!(out.inst(i).kind, InstKind::Store { .. }) as usize;
        });
        assert_eq!(stores, 1);
        let header_has_ptr_param =
            out.block_ids().any(|bb| out.block(bb).params.contains(&Type::Ptr));
        assert!(header_has_ptr_param, "{}", dae_ir::print_function(&out, None));
    }

    #[test]
    fn nested_row_major_reduces_both_levels() {
        let n = 64i64;
        let mut m = dae_ir::Module::new();
        let g = m.add_global("a", Type::F64, (n * n) as u64);
        let mut b = FunctionBuilder::new("mm", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, j| {
                let r = b.imul(i, n);
                let idx = b.iadd(r, j);
                let addr = b.elem_addr(Value::Global(g), idx, Type::F64);
                let v = b.load(Type::F64, addr);
                let w = b.fmul(v, 2.0f64);
                b.store(addr, w);
            });
        });
        b.ret(None);
        let out = strength_reduce_and_clean(&b.finish());
        verify_function(&out, None).unwrap();
        // The inner loop body should be mul-free (the row mul moves to the
        // outer loop or becomes a derived IV).
        let analysis = FunctionAnalysis::run(&out);
        let inner = analysis
            .forest
            .loops()
            .find(|(_, l)| l.depth == 2)
            .map(|(_, l)| l.blocks.clone())
            .expect("inner loop");
        let mut inner_muls = 0;
        for bb in &inner {
            for &i in &out.block(*bb).insts {
                inner_muls +=
                    matches!(out.inst(i).kind, InstKind::Binary { op: BinOp::IMul, .. }) as usize;
            }
        }
        assert_eq!(inner_muls, 0, "{}", dae_ir::print_function(&out, None));
    }

    #[test]
    fn non_counted_loops_untouched() {
        let mut b = FunctionBuilder::new("w", vec![Type::I64], Type::I64);
        let out = b.while_loop(
            vec![Value::Arg(0)],
            |b, c| b.cmp(dae_ir::CmpOp::Gt, c[0], 0i64),
            |b, c| {
                let h = b.imul(c[0], 3i64);
                let r = b.irem(h, 7i64);
                vec![b.isub(r, 1i64)]
            },
        );
        b.ret(Some(out[0]));
        let f = b.finish();
        let before = dae_ir::print_function(&f, None);
        let g = strength_reduce_and_clean(&f);
        // The multiply is of a non-affine chaotic value: unchanged count.
        assert_eq!(
            count_muls(&g),
            1,
            "before:\n{before}\nafter:\n{}",
            dae_ir::print_function(&g, None)
        );
    }
}
