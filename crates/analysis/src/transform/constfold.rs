//! Constant folding and algebraic simplification.

use dae_ir::{BinOp, CmpOp, Function, InstKind, UnOp, Value};
use std::collections::HashMap;

fn eval_ibin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::IAdd => a.wrapping_add(b),
        BinOp::ISub => a.wrapping_sub(b),
        BinOp::IMul => a.wrapping_mul(b),
        BinOp::IDiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::IRem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::AShr => a.wrapping_shr(b as u32),
        _ => return None,
    })
}

fn eval_fbin(op: BinOp, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        BinOp::FAdd => a + b,
        BinOp::FSub => a - b,
        BinOp::FMul => a * b,
        BinOp::FDiv => a / b,
        BinOp::FMin => a.min(b),
        BinOp::FMax => a.max(b),
        _ => return None,
    })
}

fn eval_cmp_i(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Computes the folded replacement of a single instruction, if any.
fn fold_inst(kind: &InstKind) -> Option<Value> {
    match kind {
        InstKind::Binary { op, lhs, rhs } => {
            if let (Some(a), Some(b)) = (lhs.as_i64(), rhs.as_i64()) {
                return eval_ibin(*op, a, b).map(Value::i64);
            }
            if let (Some(a), Some(b)) = (lhs.as_f64(), rhs.as_f64()) {
                return eval_fbin(*op, a, b).map(Value::f64);
            }
            // Algebraic identities.
            match (op, lhs.as_i64(), rhs.as_i64()) {
                (BinOp::IAdd, Some(0), _) => Some(*rhs),
                (BinOp::IAdd, _, Some(0)) | (BinOp::ISub, _, Some(0)) => Some(*lhs),
                (BinOp::IMul, Some(1), _) => Some(*rhs),
                (BinOp::IMul, _, Some(1)) => Some(*lhs),
                (BinOp::IMul, Some(0), _) | (BinOp::IMul, _, Some(0)) => Some(Value::i64(0)),
                (BinOp::Shl, _, Some(0)) => Some(*lhs),
                _ => match (op, lhs.as_f64(), rhs.as_f64()) {
                    (BinOp::FMul, _, Some(1.0)) => Some(*lhs),
                    (BinOp::FMul, Some(1.0), _) => Some(*rhs),
                    (BinOp::FAdd, _, Some(0.0)) => Some(*lhs),
                    (BinOp::FAdd, Some(0.0), _) => Some(*rhs),
                    _ => None,
                },
            }
        }
        InstKind::Unary { op, operand } => match op {
            UnOp::INeg => operand.as_i64().map(|v| Value::i64(v.wrapping_neg())),
            UnOp::FNeg => operand.as_f64().map(|v| Value::f64(-v)),
            UnOp::FSqrt => operand.as_f64().map(|v| Value::f64(v.sqrt())),
            UnOp::IToF => operand.as_i64().map(|v| Value::f64(v as f64)),
            UnOp::FToI => operand.as_f64().map(|v| Value::i64(v as i64)),
            UnOp::Not => match operand {
                Value::ConstBool(b) => Some(Value::ConstBool(!b)),
                _ => None,
            },
            _ => None,
        },
        InstKind::Cmp { op, lhs, rhs } => {
            if let (Some(a), Some(b)) = (lhs.as_i64(), rhs.as_i64()) {
                return Some(Value::ConstBool(eval_cmp_i(*op, a, b)));
            }
            if lhs == rhs && !lhs.is_const() {
                // x op x folds for pure predicates.
                return Some(Value::ConstBool(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge)));
            }
            None
        }
        InstKind::Select { cond, then_value, else_value } => match cond {
            Value::ConstBool(true) => Some(*then_value),
            Value::ConstBool(false) => Some(*else_value),
            _ if then_value == else_value => Some(*then_value),
            _ => None,
        },
        InstKind::PtrAdd { base, offset } if offset.as_i64() == Some(0) => Some(*base),
        _ => None,
    }
}

/// Folds constant expressions to a fixpoint, rewriting uses. Does not remove
/// the dead defining instructions — run DCE afterwards. Returns `true` on
/// change.
pub fn fold_constants(func: &mut Function) -> bool {
    let mut changed_any = false;
    loop {
        let mut repl: HashMap<Value, Value> = HashMap::new();
        for bb in func.block_ids() {
            for &inst in &func.block(bb).insts {
                if let Some(v) = fold_inst(&func.inst(inst).kind) {
                    repl.insert(Value::Inst(inst), v);
                }
            }
        }
        if repl.is_empty() {
            return changed_any;
        }
        // Resolve chains (a → b → const).
        let resolve = |mut v: Value| -> Value {
            let mut hops = 0;
            while let Some(&n) = repl.get(&v) {
                v = n;
                hops += 1;
                if hops > repl.len() {
                    break;
                }
            }
            v
        };
        let mut changed = false;
        for bb in func.block_ids().collect::<Vec<_>>() {
            let insts = func.block(bb).insts.clone();
            for inst in insts {
                func.inst_mut(inst).kind.map_operands(|v| {
                    let n = resolve(v);
                    changed |= n != v;
                    n
                });
            }
            if func.block(bb).term.is_some() {
                func.terminator_mut(bb).map_operands(|v| {
                    let n = resolve(v);
                    changed |= n != v;
                    n
                });
            }
        }
        changed_any |= changed;
        if !changed {
            return changed_any;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::dce::dce_fixpoint;
    use dae_ir::{FunctionBuilder, Type};

    #[test]
    fn folds_pure_constant_chain() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let a = b.iadd(2i64, 3i64);
        let c = b.imul(a, 4i64);
        b.ret(Some(c));
        let mut f = b.finish();
        assert!(fold_constants(&mut f));
        dce_fixpoint(&mut f);
        assert_eq!(f.placed_inst_count(), 0);
        match f.terminator(f.entry) {
            dae_ir::Terminator::Ret(Some(v)) => assert_eq!(v.as_i64(), Some(20)),
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn folds_identities() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
        let x0 = b.iadd(Value::Arg(0), 0i64);
        let x1 = b.imul(x0, 1i64);
        b.ret(Some(x1));
        let mut f = b.finish();
        fold_constants(&mut f);
        dce_fixpoint(&mut f);
        assert_eq!(f.placed_inst_count(), 0);
        match f.terminator(f.entry) {
            dae_ir::Terminator::Ret(Some(v)) => assert_eq!(*v, Value::Arg(0)),
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let d = b.idiv(1i64, 0i64);
        b.ret(Some(d));
        let mut f = b.finish();
        assert!(!fold_constants(&mut f));
        assert_eq!(f.placed_inst_count(), 1);
    }

    #[test]
    fn folds_comparison_and_select() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let c = b.cmp(CmpOp::Lt, 1i64, 2i64);
        let s = b.select(c, 10i64, 20i64);
        b.ret(Some(s));
        let mut f = b.finish();
        fold_constants(&mut f);
        dce_fixpoint(&mut f);
        match f.terminator(f.entry) {
            dae_ir::Terminator::Ret(Some(v)) => assert_eq!(v.as_i64(), Some(10)),
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn x_cmp_x_folds() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::Bool);
        let c = b.cmp(CmpOp::Le, Value::Arg(0), Value::Arg(0));
        b.ret(Some(c));
        let mut f = b.finish();
        fold_constants(&mut f);
        match f.terminator(f.entry) {
            dae_ir::Terminator::Ret(Some(Value::ConstBool(true))) => {}
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn float_folding() {
        let mut b = FunctionBuilder::new("f", vec![], Type::F64);
        let a = b.fadd(1.5f64, 2.5f64);
        let c = b.fmul(a, 2.0f64);
        b.ret(Some(c));
        let mut f = b.finish();
        fold_constants(&mut f);
        match f.terminator(f.entry) {
            dae_ir::Terminator::Ret(Some(v)) => assert_eq!(v.as_f64(), Some(8.0)),
            t => panic!("{t:?}"),
        }
    }
}
