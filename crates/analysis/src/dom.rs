//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::cfg::Cfg;
use dae_ir::{BlockId, Function};

/// Immediate-dominator table for the reachable blocks of a function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` is the immediate dominator of `b`; the entry maps to itself.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `func` given its [`Cfg`].
    pub fn new(func: &Function, cfg: &Cfg) -> Self {
        let n = func.num_blocks();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = func.entry;
        idom[entry.0 as usize] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up in RPO index space until the fingers meet.
            while a != b {
                while cfg.rpo_index(a).unwrap() > cfg.rpo_index(b).unwrap() {
                    a = idom[a.0 as usize].unwrap();
                }
                while cfg.rpo_index(b).unwrap() > cfg.rpo_index(a).unwrap() {
                    b = idom[b.0 as usize].unwrap();
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &bb in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(bb) {
                    if !cfg.is_reachable(p) || idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bb.0 as usize] != Some(ni) {
                        idom[bb.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, entry }
    }

    /// The immediate dominator of `bb` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        if bb == self.entry {
            None
        } else {
            self.idom[bb.0 as usize]
        }
    }

    /// True if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{CmpOp, FunctionBuilder, Type, Value};

    #[test]
    fn diamond_dominators() {
        let mut b = FunctionBuilder::new("d", vec![Type::I64], Type::I64);
        let c = b.cmp(CmpOp::Gt, Value::Arg(0), 0i64);
        let v =
            b.if_then_else(c, vec![Type::I64], |_| vec![Value::i64(1)], |_| vec![Value::i64(2)]);
        b.ret(Some(v[0]));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let entry = f.entry;
        let join = *cfg.rpo().last().unwrap();
        // Entry dominates everything; neither arm dominates the join.
        assert_eq!(dom.idom(join), Some(entry));
        for &bb in cfg.rpo() {
            assert!(dom.dominates(entry, bb));
        }
        let arms: Vec<BlockId> = cfg.succs(entry).to_vec();
        assert!(!dom.dominates(arms[0], join));
        assert!(!dom.dominates(arms[1], join));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = FunctionBuilder::new("l", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let _ = b.imul(i, i);
        });
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let header = cfg.rpo()[1];
        let body = cfg
            .succs(header)
            .iter()
            .copied()
            .find(|&s| cfg.succs(s).contains(&header))
            .expect("latch");
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(body, header));
        assert_eq!(dom.idom(body), Some(header));
    }

    #[test]
    fn nested_loop_dominance_chain() {
        let mut b = FunctionBuilder::new("n", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, _| {
            b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, j| {
                let _ = b.imul(j, 2i64);
            });
        });
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        // Every reachable block is dominated by the entry and the idom chain
        // terminates there.
        for &bb in cfg.rpo() {
            let mut cur = bb;
            let mut steps = 0;
            while let Some(up) = dom.idom(cur) {
                cur = up;
                steps += 1;
                assert!(steps <= f.num_blocks(), "idom chain cycle");
            }
            assert_eq!(cur, f.entry);
        }
    }
}
