//! Natural-loop detection, the loop forest, and counted-loop recognition.
//!
//! Counted-loop recognition is the entry point of the scalar-evolution
//! analysis: a recognised [`CountedLoop`] gives the induction variable, its
//! initial value, constant step and bound — exactly the ingredients the
//! polyhedral front-end of the DAE compiler turns into iteration-domain
//! constraints.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use dae_ir::{BinOp, BlockId, CmpOp, Function, InstKind, Terminator, Value};
use std::collections::HashSet;

/// Index of a loop within a [`LoopForest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The unique header block (target of all back edges).
    pub header: BlockId,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop body (header included).
    pub blocks: HashSet<BlockId>,
    /// The enclosing loop, if nested.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth; outermost loops have depth 1.
    pub depth: u32,
}

/// The loop forest of one function.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<Loop>,
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Detects all natural loops of `func`.
    ///
    /// Irreducible control flow (a back edge whose target does not dominate
    /// its source) is ignored — such edges never arise from the structured
    /// builder, and the DAE compiler refuses tasks it cannot analyse anyway.
    pub fn new(func: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        // Collect back edges grouped by header.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
        for &bb in cfg.rpo() {
            for &succ in cfg.succs(bb) {
                if dom.dominates(succ, bb) {
                    match headers.iter().position(|&h| h == succ) {
                        Some(i) => latches_of[i].push(bb),
                        None => {
                            headers.push(succ);
                            latches_of.push(vec![bb]);
                        }
                    }
                }
            }
        }

        // Body of each loop: header plus everything that reaches a latch
        // without passing through the header.
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in headers.into_iter().zip(latches_of) {
            let mut blocks: HashSet<BlockId> = HashSet::new();
            blocks.insert(header);
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(bb) = work.pop() {
                if blocks.insert(bb) {
                    for &p in cfg.preds(bb) {
                        if cfg.is_reachable(p) {
                            work.push(p);
                        }
                    }
                }
            }
            loops.push(Loop { header, latches, blocks, parent: None, children: vec![], depth: 0 });
        }

        // Nesting: loop A is the parent of B if A contains B's header and A≠B
        // and A is the smallest such loop.
        let ids: Vec<LoopId> = (0..loops.len() as u32).map(LoopId).collect();
        for &b in &ids {
            let mut best: Option<LoopId> = None;
            for &a in &ids {
                if a == b {
                    continue;
                }
                if loops[a.0 as usize].blocks.contains(&loops[b.0 as usize].header)
                    && loops[a.0 as usize].header != loops[b.0 as usize].header
                {
                    best = match best {
                        None => Some(a),
                        Some(cur)
                            if loops[a.0 as usize].blocks.len()
                                < loops[cur.0 as usize].blocks.len() =>
                        {
                            Some(a)
                        }
                        other => other,
                    };
                }
            }
            loops[b.0 as usize].parent = best;
        }
        for &b in &ids {
            if let Some(p) = loops[b.0 as usize].parent {
                loops[p.0 as usize].children.push(b);
            }
        }
        // Depths.
        for &b in &ids {
            let mut d = 1;
            let mut cur = loops[b.0 as usize].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.0 as usize].parent;
            }
            loops[b.0 as usize].depth = d;
        }

        // Innermost loop per block = the smallest loop containing it.
        let mut innermost: Vec<Option<LoopId>> = vec![None; func.num_blocks()];
        for (slot, inner) in innermost.iter_mut().enumerate() {
            let bb = BlockId(slot as u32);
            let mut best: Option<LoopId> = None;
            for &l in &ids {
                if loops[l.0 as usize].blocks.contains(&bb) {
                    best = match best {
                        None => Some(l),
                        Some(cur)
                            if loops[l.0 as usize].blocks.len()
                                < loops[cur.0 as usize].blocks.len() =>
                        {
                            Some(l)
                        }
                        other => other,
                    };
                }
            }
            *inner = best;
        }

        LoopForest { loops, innermost }
    }

    /// All loops, unordered.
    pub fn loops(&self) -> impl Iterator<Item = (LoopId, &Loop)> {
        self.loops.iter().enumerate().map(|(i, l)| (LoopId(i as u32), l))
    }

    /// Access one loop.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.0 as usize]
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True when the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Innermost loop containing `bb`, if any.
    pub fn innermost(&self, bb: BlockId) -> Option<LoopId> {
        self.innermost[bb.0 as usize]
    }

    /// The chain of loops containing `bb`, outermost first.
    pub fn nest_of(&self, bb: BlockId) -> Vec<LoopId> {
        let mut chain = Vec::new();
        let mut cur = self.innermost(bb);
        while let Some(l) = cur {
            chain.push(l);
            cur = self.get(l).parent;
        }
        chain.reverse();
        chain
    }

    /// The loop with header `header`, if one exists.
    pub fn loop_with_header(&self, header: BlockId) -> Option<LoopId> {
        self.loops.iter().position(|l| l.header == header).map(|i| LoopId(i as u32))
    }
}

/// A recognised counted loop `for (iv = init; iv <cmp> bound; iv += step)`.
#[derive(Clone, Debug)]
pub struct CountedLoop {
    /// The loop this description belongs to.
    pub loop_id: LoopId,
    /// The induction variable (a header block parameter).
    pub iv: Value,
    /// Position of the IV among the header's parameters.
    pub iv_index: u32,
    /// Value of the IV on loop entry.
    pub init: Value,
    /// Constant per-iteration increment (may be negative).
    pub step: i64,
    /// The bound the IV is compared against.
    pub bound: Value,
    /// Predicate under which the loop *continues* (`iv cmp bound`).
    pub cmp: CmpOp,
}

/// Tries to recognise `lp` as a counted loop.
///
/// The pattern matched is the one produced by
/// [`dae_ir::FunctionBuilder::counted_loop`] and by any front-end lowering of
/// a C `for` loop: the header's terminator branches on `icmp cmp iv, bound`
/// where `iv` is a header parameter, the in-loop successor leads to latches
/// that pass `iv + step` (constant `step`) back to the header, and every
/// entry edge passes the same initial value.
pub fn recognize_counted(
    func: &Function,
    cfg: &Cfg,
    forest: &LoopForest,
    lp: LoopId,
) -> Option<CountedLoop> {
    let l = forest.get(lp);
    let header = l.header;

    // Header must branch on a comparison against a header param.
    let (cond, then_dest, else_dest) = match func.terminator(header) {
        Terminator::Branch { cond, then_dest, else_dest } => (cond, then_dest, else_dest),
        _ => return None,
    };
    let cond_inst = match cond {
        Value::Inst(i) => i,
        _ => return None,
    };
    let (op, lhs, rhs) = match &func.inst(*cond_inst).kind {
        InstKind::Cmp { op, lhs, rhs } => (*op, *lhs, *rhs),
        _ => return None,
    };

    // Which side is a header parameter?
    let header_param_index = |v: Value| -> Option<u32> {
        match v {
            Value::BlockParam { block, index } if block == header => Some(index),
            _ => None,
        }
    };
    let (iv, iv_index, bound, cmp) = if let Some(idx) = header_param_index(lhs) {
        (lhs, idx, rhs, op)
    } else if let Some(idx) = header_param_index(rhs) {
        (rhs, idx, lhs, op.swapped())
    } else {
        return None;
    };

    // The continue-edge must stay in the loop; if the `then` edge exits,
    // the continue predicate is the negation.
    let (continue_in_loop, cmp) = if l.blocks.contains(&then_dest.block) {
        (then_dest.block, cmp)
    } else if l.blocks.contains(&else_dest.block) {
        (else_dest.block, cmp.negated())
    } else {
        return None;
    };
    let _ = continue_in_loop;

    // Every latch must pass `iv + step` at the IV position.
    let mut step: Option<i64> = None;
    for &latch in &l.latches {
        let dest = match func.terminator(latch) {
            Terminator::Jump(d) if d.block == header => d,
            Terminator::Branch { then_dest, else_dest, .. } => {
                if then_dest.block == header {
                    then_dest
                } else if else_dest.block == header {
                    else_dest
                } else {
                    return None;
                }
            }
            _ => return None,
        };
        let next = *dest.args.get(iv_index as usize)?;
        let next_inst = match next {
            Value::Inst(i) => i,
            _ => return None,
        };
        let this_step = match &func.inst(next_inst).kind {
            InstKind::Binary { op: BinOp::IAdd, lhs, rhs } if *lhs == iv => rhs.as_i64()?,
            InstKind::Binary { op: BinOp::IAdd, lhs, rhs } if *rhs == iv => lhs.as_i64()?,
            InstKind::Binary { op: BinOp::ISub, lhs, rhs } if *lhs == iv => {
                rhs.as_i64()?.checked_neg()?
            }
            _ => return None,
        };
        match step {
            None => step = Some(this_step),
            Some(s) if s == this_step => {}
            _ => return None,
        }
    }
    let step = step?;
    if step == 0 {
        return None;
    }

    // All non-latch predecessors of the header must pass the same init value.
    let mut init: Option<Value> = None;
    for &p in cfg.preds(header) {
        if l.latches.contains(&p) {
            continue;
        }
        for dest in func.terminator(p).successors() {
            if dest.block != header {
                continue;
            }
            let v = *dest.args.get(iv_index as usize)?;
            match init {
                None => init = Some(v),
                Some(cur) if cur == v => {}
                _ => return None,
            }
        }
    }
    let init = init?;

    Some(CountedLoop { loop_id: lp, iv, iv_index, init, step, bound, cmp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type};

    fn analyse(func: &Function) -> (Cfg, DomTree) {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(func, &cfg);
        (cfg, dom)
    }

    #[test]
    fn detects_single_loop() {
        let mut b = FunctionBuilder::new("l", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |_, _| {});
        b.ret(None);
        let f = b.finish();
        let (cfg, dom) = analyse(&f);
        let forest = LoopForest::new(&f, &cfg, &dom);
        assert_eq!(forest.len(), 1);
        let (id, l) = forest.loops().next().unwrap();
        assert_eq!(l.depth, 1);
        assert_eq!(l.latches.len(), 1);
        let counted = recognize_counted(&f, &cfg, &forest, id).expect("counted");
        assert_eq!(counted.step, 1);
        assert_eq!(counted.init, Value::i64(0));
        assert_eq!(counted.bound, Value::Arg(0));
        assert_eq!(counted.cmp, CmpOp::Lt);
    }

    #[test]
    fn detects_nesting_depths() {
        let mut b = FunctionBuilder::new("n", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, _| {
            b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, _| {
                b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |_, _| {});
            });
        });
        b.ret(None);
        let f = b.finish();
        let (cfg, dom) = analyse(&f);
        let forest = LoopForest::new(&f, &cfg, &dom);
        assert_eq!(forest.len(), 3);
        let mut depths: Vec<u32> = forest.loops().map(|(_, l)| l.depth).collect();
        depths.sort_unstable();
        assert_eq!(depths, vec![1, 2, 3]);
        // innermost loop's nest chain has length 3
        let inner = forest.loops().find(|(_, l)| l.depth == 3).map(|(id, _)| id).unwrap();
        let chain = forest.nest_of(forest.get(inner).header);
        assert_eq!(chain.len(), 3);
        assert_eq!(*chain.last().unwrap(), inner);
    }

    #[test]
    fn triangular_loop_bounds_recognised() {
        // for i in 0..n { for j in i+1..n { } } — the paper's LU shape.
        let mut b = FunctionBuilder::new("tri", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let lo = b.iadd(i, 1i64);
            b.counted_loop(lo, Value::Arg(0), Value::i64(1), |_, _| {});
        });
        b.ret(None);
        let f = b.finish();
        let (cfg, dom) = analyse(&f);
        let forest = LoopForest::new(&f, &cfg, &dom);
        let inner = forest.loops().find(|(_, l)| l.depth == 2).map(|(id, _)| id).unwrap();
        let c = recognize_counted(&f, &cfg, &forest, inner).expect("counted");
        // init is the computed i+1 value
        assert!(matches!(c.init, Value::Inst(_)));
        assert_eq!(c.step, 1);
    }

    #[test]
    fn while_loop_is_not_counted() {
        let mut b = FunctionBuilder::new("w", vec![Type::Ptr], Type::Void);
        // pointer chase: while (p != null) p = *p;
        b.while_loop(
            vec![Value::Arg(0)],
            |b, c| {
                let pi = b.unary(dae_ir::UnOp::PtrToInt, c[0]);
                b.cmp(CmpOp::Ne, pi, 0i64)
            },
            |b, c| vec![b.load(Type::Ptr, c[0])],
        );
        b.ret(None);
        let f = b.finish();
        let (cfg, dom) = analyse(&f);
        let forest = LoopForest::new(&f, &cfg, &dom);
        assert_eq!(forest.len(), 1);
        let (id, _) = forest.loops().next().unwrap();
        assert!(recognize_counted(&f, &cfg, &forest, id).is_none());
    }

    #[test]
    fn negative_step_recognised() {
        let mut b = FunctionBuilder::new("down", vec![Type::I64], Type::Void);
        // for (i = n; i > 0; i -= 2)
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let iv = b.block_param(header, Type::I64);
        b.jump(header, vec![Value::Arg(0)]);
        b.switch_to(header);
        let c = b.cmp(CmpOp::Gt, iv, 0i64);
        b.branch(c, body, vec![], exit, vec![]);
        b.switch_to(body);
        let next = b.isub(iv, 2i64);
        b.jump(header, vec![next]);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let (cfg, dom) = analyse(&f);
        let forest = LoopForest::new(&f, &cfg, &dom);
        let (id, _) = forest.loops().next().unwrap();
        let cl = recognize_counted(&f, &cfg, &forest, id).expect("counted");
        assert_eq!(cl.step, -2);
        assert_eq!(cl.cmp, CmpOp::Gt);
    }
}
