//! Control-flow graph queries: successors, predecessors, orderings.

use dae_ir::{BlockId, Function};
use std::collections::HashSet;

/// Predecessor/successor sets plus traversal orders for one function.
///
/// The graph is computed once from the terminators; rebuild after mutating
/// control flow.
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    /// Blocks reachable from the entry, in reverse postorder.
    rpo: Vec<BlockId>,
    /// `rpo_index[b] == Some(i)` iff `rpo[i] == b`.
    rpo_index: Vec<Option<u32>>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.num_blocks();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for bb in func.block_ids() {
            for dest in func.terminator(bb).successors() {
                succs[bb.0 as usize].push(dest.block);
                preds[dest.block.0 as usize].push(bb);
            }
        }

        // Postorder DFS from the entry.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut visited: HashSet<BlockId> = HashSet::new();
        // Iterative DFS with an explicit state machine to avoid recursion.
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
        visited.insert(func.entry);
        while let Some(&mut (bb, ref mut idx)) = stack.last_mut() {
            let s = &succs[bb.0 as usize];
            if *idx < s.len() {
                let next = s[*idx];
                *idx += 1;
                if visited.insert(next) {
                    stack.push((next, 0));
                }
            } else {
                post.push(bb);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![None; n];
        for (i, &bb) in rpo.iter().enumerate() {
            rpo_index[bb.0 as usize] = Some(i as u32);
        }
        Cfg { preds, succs, rpo, rpo_index }
    }

    /// Predecessors of `bb` (with multiplicity for duplicate edges).
    pub fn preds(&self, bb: BlockId) -> &[BlockId] {
        &self.preds[bb.0 as usize]
    }

    /// Successors of `bb`.
    pub fn succs(&self, bb: BlockId) -> &[BlockId] {
        &self.succs[bb.0 as usize]
    }

    /// Reachable blocks in reverse postorder (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `bb` in the reverse postorder, if reachable.
    pub fn rpo_index(&self, bb: BlockId) -> Option<usize> {
        self.rpo_index[bb.0 as usize].map(|i| i as usize)
    }

    /// True if `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.rpo_index(bb).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type, Value};

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![Type::I64], Type::I64);
        let c = b.cmp(dae_ir::CmpOp::Gt, Value::Arg(0), 0i64);
        let v =
            b.if_then_else(c, vec![Type::I64], |_| vec![Value::i64(1)], |_| vec![Value::i64(2)]);
        b.ret(Some(v[0]));
        b.finish()
    }

    #[test]
    fn diamond_shape() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let entry = f.entry;
        assert_eq!(cfg.succs(entry).len(), 2);
        assert_eq!(cfg.rpo()[0], entry);
        assert_eq!(cfg.rpo().len(), 4);
        // join block has two predecessors
        let join = *cfg.rpo().last().unwrap();
        assert_eq!(cfg.preds(join).len(), 2);
    }

    #[test]
    fn rpo_places_preds_before_succs_in_acyclic_graphs() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        for bb in cfg.rpo() {
            for s in cfg.succs(*bb) {
                // In an acyclic graph every edge goes forward in RPO.
                assert!(cfg.rpo_index(*bb).unwrap() < cfg.rpo_index(*s).unwrap());
            }
        }
    }

    #[test]
    fn unreachable_blocks_are_excluded() {
        let mut b = FunctionBuilder::new("u", vec![], Type::Void);
        let dead = b.create_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo().len(), 1);
        assert!(!cfg.is_reachable(dead));
    }

    #[test]
    fn loop_back_edge_appears() {
        let mut b = FunctionBuilder::new("l", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |_, _| {});
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        // find the header: a reachable block with 2 preds (entry + latch)
        let header =
            cfg.rpo().iter().copied().find(|&bb| cfg.preds(bb).len() == 2).expect("loop header");
        assert_eq!(cfg.succs(header).len(), 2);
    }
}
