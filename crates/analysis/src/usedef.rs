//! Def-use chains: who uses each SSA value.

use dae_ir::{BlockId, Function, InstId, Value};
use std::collections::HashMap;

/// A place where a value is used.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UseSite {
    /// Operand of an instruction.
    Inst(BlockId, InstId),
    /// Operand of the terminator of a block (condition or edge argument).
    Term(BlockId),
}

/// Def-use table for one function. Rebuild after mutating the function.
#[derive(Clone, Debug, Default)]
pub struct UseDefs {
    uses: HashMap<Value, Vec<UseSite>>,
}

impl UseDefs {
    /// Computes the table from the placed instructions and terminators of
    /// `func`.
    pub fn new(func: &Function) -> Self {
        let mut uses: HashMap<Value, Vec<UseSite>> = HashMap::new();
        for bb in func.block_ids() {
            for &inst in &func.block(bb).insts {
                func.inst(inst).kind.for_each_operand(|v| {
                    if !v.is_const() {
                        uses.entry(v).or_default().push(UseSite::Inst(bb, inst));
                    }
                });
            }
            if let Some(term) = &func.block(bb).term {
                term.for_each_operand(|v| {
                    if !v.is_const() {
                        uses.entry(v).or_default().push(UseSite::Term(bb));
                    }
                });
            }
        }
        UseDefs { uses }
    }

    /// The use sites of `v` (empty if unused).
    pub fn uses_of(&self, v: Value) -> &[UseSite] {
        self.uses.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if `v` has no uses.
    pub fn is_unused(&self, v: Value) -> bool {
        self.uses_of(v).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type};

    #[test]
    fn finds_inst_and_terminator_uses() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
        let s = b.iadd(Value::Arg(0), 1i64);
        let t = b.imul(s, 2i64);
        b.ret(Some(t));
        let f = b.finish();
        let ud = UseDefs::new(&f);
        assert_eq!(ud.uses_of(s).len(), 1);
        assert!(matches!(ud.uses_of(s)[0], UseSite::Inst(_, _)));
        assert_eq!(ud.uses_of(t).len(), 1);
        assert!(matches!(ud.uses_of(t)[0], UseSite::Term(_)));
        assert_eq!(ud.uses_of(Value::Arg(0)).len(), 1);
    }

    #[test]
    fn unused_value_reports_empty() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let dead = b.iadd(1i64, 2i64);
        b.ret(None);
        let f = b.finish();
        let ud = UseDefs::new(&f);
        assert!(ud.is_unused(dead));
    }

    #[test]
    fn edge_args_count_as_uses() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |_, _| {});
        b.ret(None);
        let f = b.finish();
        let ud = UseDefs::new(&f);
        // The bound arg0 is used by the header comparison.
        assert!(!ud.is_unused(Value::Arg(0)));
    }
}
