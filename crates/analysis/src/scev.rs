//! Scalar evolution: affine forms of integer values and addresses.
//!
//! This is the stand-in for LLVM's ScalarEvolution pass that the paper uses
//! to classify code (§5): "Based on the expressions provided by the Scalar
//! Evolution pass, we compute linear functions to describe the access
//! pattern of each memory instruction, when possible."
//!
//! A value is *affine* here when it can be written as
//! `c0 + Σ ci·iv_i + Σ dj·param_j` with integer constant coefficients, where
//! `iv_i` are induction variables of recognised counted loops and `param_j`
//! are the task's scalar arguments. An address is affine when it is a global
//! array base plus an affine byte offset.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::loops::{recognize_counted, CountedLoop, LoopForest, LoopId};
use dae_ir::{BinOp, Function, GlobalId, InstKind, UnOp, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A symbolic variable of an affine form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AffineVar {
    /// The induction variable of a counted loop.
    Iv(LoopId),
    /// The `u32`-th argument of the analysed function.
    Param(u32),
}

/// An affine integer expression `constant + Σ coeff·var`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Affine {
    /// Constant term.
    pub constant: i64,
    /// Per-variable integer coefficients (zero coefficients are not stored).
    pub terms: BTreeMap<AffineVar, i64>,
}

impl Affine {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        Affine { constant: c, terms: BTreeMap::new() }
    }

    /// The expression `1·var`.
    pub fn var(v: AffineVar) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1);
        Affine { constant: 0, terms }
    }

    /// True if the expression has no variable terms.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if [`Affine::is_const`].
    pub fn as_const(&self) -> Option<i64> {
        if self.is_const() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: AffineVar) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    /// Sum of two affine expressions.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant = out.constant.wrapping_add(other.constant);
        for (v, c) in &other.terms {
            let e = out.terms.entry(*v).or_insert(0);
            *e = e.wrapping_add(*c);
            if *e == 0 {
                out.terms.remove(v);
            }
        }
        out
    }

    /// Difference of two affine expressions.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// The expression multiplied by a constant.
    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        let mut out = Affine::constant(self.constant.wrapping_mul(k));
        for (v, c) in &self.terms {
            out.terms.insert(*v, c.wrapping_mul(k));
        }
        out
    }

    /// Product, defined only when at least one side is constant.
    pub fn mul(&self, other: &Affine) -> Option<Affine> {
        if let Some(k) = other.as_const() {
            Some(self.scale(k))
        } else {
            self.as_const().map(|k| other.scale(k))
        }
    }

    /// Substitutes `var := repl` (used to rewrite IVs into normalized loop
    /// counters).
    pub fn substitute(&self, var: AffineVar, repl: &Affine) -> Affine {
        let c = self.coeff(var);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&var);
        out.add(&repl.scale(c))
    }

    /// All variables appearing with non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = AffineVar> + '_ {
        self.terms.keys().copied()
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if *c == 1 {
                    write!(f, "{v:?}")?;
                } else {
                    write!(f, "{c}*{v:?}")?;
                }
                first = false;
            } else if *c >= 0 {
                write!(f, " + {}*{v:?}", c)?;
            } else {
                write!(f, " - {}*{v:?}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)
        } else {
            Ok(())
        }
    }
}

/// A pointer expressed as `global base + affine byte offset`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PtrAffine {
    /// The global array the pointer points into.
    pub base: GlobalId,
    /// Byte offset from the base.
    pub offset: Affine,
}

/// Scalar-evolution engine for one function.
///
/// Construction runs counted-loop recognition for every loop; affine queries
/// are memoised.
pub struct ScalarEvolution<'f> {
    func: &'f Function,
    counted: HashMap<LoopId, CountedLoop>,
    forest: &'f LoopForest,
    int_memo: HashMap<Value, Option<Affine>>,
    ptr_memo: HashMap<Value, Option<PtrAffine>>,
}

impl<'f> ScalarEvolution<'f> {
    /// Builds the engine; `cfg`, `dom` and `forest` must describe `func`.
    pub fn new(func: &'f Function, cfg: &Cfg, _dom: &DomTree, forest: &'f LoopForest) -> Self {
        let mut counted = HashMap::new();
        for (id, _) in forest.loops() {
            if let Some(c) = recognize_counted(func, cfg, forest, id) {
                counted.insert(id, c);
            }
        }
        ScalarEvolution {
            func,
            counted,
            forest,
            int_memo: HashMap::new(),
            ptr_memo: HashMap::new(),
        }
    }

    /// The recognised counted loop for `id`, if recognition succeeded.
    pub fn counted(&self, id: LoopId) -> Option<&CountedLoop> {
        self.counted.get(&id)
    }

    /// The loop forest the engine was built from.
    pub fn forest(&self) -> &LoopForest {
        self.forest
    }

    /// Affine form of an integer value, if one exists.
    pub fn affine_of(&mut self, v: Value) -> Option<Affine> {
        if let Some(hit) = self.int_memo.get(&v) {
            return hit.clone();
        }
        // Insert a tentative None to cut cycles through malformed IR.
        self.int_memo.insert(v, None);
        let result = self.affine_uncached(v);
        self.int_memo.insert(v, result.clone());
        result
    }

    fn affine_uncached(&mut self, v: Value) -> Option<Affine> {
        match v {
            Value::ConstI64(c) => Some(Affine::constant(c)),
            Value::ConstBool(_) | Value::ConstF64(_) | Value::Global(_) => None,
            Value::Arg(i) => Some(Affine::var(AffineVar::Param(i))),
            Value::BlockParam { block, index } => {
                // Is this the IV of a recognised counted loop?
                let lp = self.forest.loop_with_header(block)?;
                let c = self.counted.get(&lp)?;
                if c.iv_index == index {
                    Some(Affine::var(AffineVar::Iv(lp)))
                } else {
                    None
                }
            }
            Value::Inst(id) => {
                let kind = self.func.inst(id).kind.clone();
                match kind {
                    InstKind::Binary { op, lhs, rhs } => {
                        let l = self.affine_of(lhs)?;
                        let r = self.affine_of(rhs)?;
                        match op {
                            BinOp::IAdd => Some(l.add(&r)),
                            BinOp::ISub => Some(l.sub(&r)),
                            BinOp::IMul => l.mul(&r),
                            BinOp::Shl => {
                                let k = r.as_const()?;
                                if (0..63).contains(&k) {
                                    Some(l.scale(1i64 << k))
                                } else {
                                    None
                                }
                            }
                            _ => None,
                        }
                    }
                    InstKind::Unary { op: UnOp::INeg, operand } => {
                        Some(self.affine_of(operand)?.scale(-1))
                    }
                    _ => None,
                }
            }
        }
    }

    /// Affine pointer form of a `ptr` value, if one exists.
    pub fn pointer_of(&mut self, v: Value) -> Option<PtrAffine> {
        if let Some(hit) = self.ptr_memo.get(&v) {
            return hit.clone();
        }
        self.ptr_memo.insert(v, None);
        let result = self.pointer_uncached(v);
        self.ptr_memo.insert(v, result.clone());
        result
    }

    fn pointer_uncached(&mut self, v: Value) -> Option<PtrAffine> {
        match v {
            Value::Global(g) => Some(PtrAffine { base: g, offset: Affine::constant(0) }),
            Value::Inst(id) => {
                let kind = self.func.inst(id).kind.clone();
                match kind {
                    InstKind::PtrAdd { base, offset } => {
                        let b = self.pointer_of(base)?;
                        let o = self.affine_of(offset)?;
                        Some(PtrAffine { base: b.base, offset: b.offset.add(&o) })
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type};

    fn engine(func: &Function) -> (Cfg, DomTree, LoopForest) {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(func, &cfg);
        let forest = LoopForest::new(func, &cfg, &dom);
        (cfg, dom, forest)
    }

    #[test]
    fn affine_arithmetic() {
        let a = Affine::var(AffineVar::Param(0));
        let b = Affine::var(AffineVar::Param(1));
        let e = a.scale(3).add(&b).add(&Affine::constant(5));
        assert_eq!(e.coeff(AffineVar::Param(0)), 3);
        assert_eq!(e.coeff(AffineVar::Param(1)), 1);
        assert_eq!(e.constant, 5);
        let d = e.sub(&e);
        assert!(d.is_const());
        assert_eq!(d.as_const(), Some(0));
    }

    #[test]
    fn mul_requires_constant_side() {
        let a = Affine::var(AffineVar::Param(0));
        assert_eq!(a.mul(&Affine::constant(4)), Some(a.scale(4)));
        assert_eq!(a.mul(&a), None);
    }

    #[test]
    fn substitute_rewrites_var() {
        // 2*iv + 1 with iv := p + 3  ==>  2*p + 7
        let lp = LoopId(0);
        let e = Affine::var(AffineVar::Iv(lp)).scale(2).add(&Affine::constant(1));
        let repl = Affine::var(AffineVar::Param(0)).add(&Affine::constant(3));
        let out = e.substitute(AffineVar::Iv(lp), &repl);
        assert_eq!(out.coeff(AffineVar::Param(0)), 2);
        assert_eq!(out.constant, 7);
        assert_eq!(out.coeff(AffineVar::Iv(lp)), 0);
    }

    #[test]
    fn recognises_affine_row_major_access() {
        // for i in 0..n: for j in 0..n: touch a[i*64 + j]  (N = 64 elems/row)
        let mut m = dae_ir::Module::new();
        let g = m.add_global("a", Type::F64, 64 * 64);
        let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::Void);
        let mut addr_val = None;
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, j| {
                let row = b.imul(i, 64i64);
                let idx = b.iadd(row, j);
                let addr = b.elem_addr(Value::Global(g), idx, Type::F64);
                addr_val = Some(addr);
                let _ = b.load(Type::F64, addr);
            });
        });
        b.ret(None);
        let f = b.finish();
        let (cfg, dom, forest) = engine(&f);
        let mut scev = ScalarEvolution::new(&f, &cfg, &dom, &forest);
        let p = scev.pointer_of(addr_val.unwrap()).expect("affine pointer");
        assert_eq!(p.base, g);
        // offset = 8*(64*i + j) = 512*i + 8*j
        let ivs: Vec<AffineVar> = p.offset.vars().collect();
        assert_eq!(ivs.len(), 2);
        let coeffs: Vec<i64> = ivs.iter().map(|v| p.offset.coeff(*v)).collect();
        let mut sorted = coeffs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![8, 512]);
        assert_eq!(p.offset.constant, 0);
    }

    #[test]
    fn data_dependent_address_is_not_affine() {
        // touch a[b[i]] — the classic non-affine indirection (CG/LibQ style).
        let mut m = dae_ir::Module::new();
        let a = m.add_global("a", Type::F64, 128);
        let idx = m.add_global("b", Type::I64, 128);
        let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::Void);
        let mut addr_val = None;
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let ia = b.elem_addr(Value::Global(idx), i, Type::I64);
            let iv = b.load(Type::I64, ia);
            let addr = b.elem_addr(Value::Global(a), iv, Type::F64);
            addr_val = Some(addr);
            let _ = b.load(Type::F64, addr);
        });
        b.ret(None);
        let f = b.finish();
        let (cfg, dom, forest) = engine(&f);
        let mut scev = ScalarEvolution::new(&f, &cfg, &dom, &forest);
        assert!(scev.pointer_of(addr_val.unwrap()).is_none());
    }

    #[test]
    fn params_stay_symbolic() {
        // touch a[base + i] with `base` a task parameter (Listing 3 pattern).
        let mut m = dae_ir::Module::new();
        let a = m.add_global("a", Type::F64, 4096);
        let mut b = FunctionBuilder::new("t", vec![Type::I64, Type::I64], Type::Void);
        let mut addr_val = None;
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let idx = b.iadd(Value::Arg(1), i);
            let addr = b.elem_addr(Value::Global(a), idx, Type::F64);
            addr_val = Some(addr);
            let _ = b.load(Type::F64, addr);
        });
        b.ret(None);
        let f = b.finish();
        let (cfg, dom, forest) = engine(&f);
        let mut scev = ScalarEvolution::new(&f, &cfg, &dom, &forest);
        let p = scev.pointer_of(addr_val.unwrap()).expect("affine");
        assert_eq!(p.offset.coeff(AffineVar::Param(1)), 8);
    }

    #[test]
    fn display_is_readable() {
        let e = Affine::var(AffineVar::Param(0)).scale(2).add(&Affine::constant(-3));
        assert_eq!(e.to_string(), "2*Param(0) - 3");
        assert_eq!(Affine::constant(0).to_string(), "0");
    }
}
