//! Modules: the unit of compilation, holding functions and global arrays.

use crate::entity::PrimaryMap;
use crate::function::Function;
use crate::types::Type;
use crate::value::{FuncId, GlobalId};

/// How a global array is initialised in simulated memory before a program
/// runs.
#[derive(Clone, Debug, PartialEq)]
pub enum GlobalInit {
    /// All elements zero.
    Zero,
    /// Explicit 64-bit words (interpreted per the element type).
    Words(Vec<u64>),
}

/// A module-level array in the simulated address space.
///
/// Globals model both the program's data arrays (matrices, state vectors,
/// sparse structures) and scalars shared between tasks (length-1 arrays).
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalData {
    /// Symbol name, unique within a module.
    pub name: String,
    /// Element type.
    pub elem_ty: Type,
    /// Number of elements.
    pub len: u64,
    /// Initial contents.
    pub init: GlobalInit,
}

impl GlobalData {
    /// Total size in bytes the global occupies.
    pub fn size_bytes(&self) -> u64 {
        self.len * self.elem_ty.size_bytes()
    }
}

/// A compilation unit: functions plus globals.
#[derive(Clone, Debug, Default)]
pub struct Module {
    funcs: PrimaryMap<FuncId, Function>,
    globals: PrimaryMap<GlobalId, GlobalData>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, func: Function) -> FuncId {
        self.funcs.push(func)
    }

    /// Declares a zero-initialised global array.
    pub fn add_global(&mut self, name: impl Into<String>, elem_ty: Type, len: u64) -> GlobalId {
        self.globals.push(GlobalData { name: name.into(), elem_ty, len, init: GlobalInit::Zero })
    }

    /// Declares a global with explicit initial contents.
    pub fn add_global_init(&mut self, global: GlobalData) -> GlobalId {
        self.globals.push(global)
    }

    /// Shared access to a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id]
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id]
    }

    /// Shared access to a global.
    pub fn global(&self, id: GlobalId) -> &GlobalData {
        &self.globals[id]
    }

    /// Mutable access to a global.
    pub fn global_mut(&mut self, id: GlobalId) -> &mut GlobalData {
        &mut self.globals[id]
    }

    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().find(|(_, f)| f.name == name).map(|(id, _)| id)
    }

    /// Looks a global up by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().find(|(_, g)| g.name == name).map(|(id, _)| id)
    }

    /// Iterates over `(id, &function)`.
    pub fn funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs.iter()
    }

    /// Iterates over `(id, &global)`.
    pub fn globals(&self) -> impl Iterator<Item = (GlobalId, &GlobalData)> {
        self.globals.iter()
    }

    /// Number of functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Number of globals.
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    /// Ids of all functions marked as tasks.
    pub fn task_ids(&self) -> Vec<FuncId> {
        self.funcs.iter().filter(|(_, f)| f.is_task).map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_find() {
        let mut m = Module::new();
        let g = m.add_global("a", Type::F64, 16);
        let f = m.add_function(Function::new("task_one", vec![], Type::Void));
        assert_eq!(m.func_by_name("task_one"), Some(f));
        assert_eq!(m.global_by_name("a"), Some(g));
        assert_eq!(m.func_by_name("nope"), None);
        assert_eq!(m.global(g).size_bytes(), 128);
    }

    #[test]
    fn task_listing() {
        let mut m = Module::new();
        let mut t = Function::new("t", vec![], Type::Void);
        t.is_task = true;
        let t_id = m.add_function(t);
        m.add_function(Function::new("helper", vec![], Type::Void));
        assert_eq!(m.task_ids(), vec![t_id]);
    }

    #[test]
    fn global_init_words() {
        let mut m = Module::new();
        let g = m.add_global_init(GlobalData {
            name: "w".into(),
            elem_ty: Type::I64,
            len: 2,
            init: GlobalInit::Words(vec![1, 2]),
        });
        match &m.global(g).init {
            GlobalInit::Words(w) => assert_eq!(w, &vec![1, 2]),
            _ => panic!("wrong init"),
        }
    }
}
