//! The scalar type system of the IR.

use std::fmt;

/// A first-class IR type.
///
/// The IR is deliberately small: 64-bit integers, 64-bit floats, booleans
/// (comparison results) and pointers. This is sufficient to express every
/// kernel in the paper's evaluation while keeping analyses simple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE-754 float.
    F64,
    /// Boolean, the result of comparisons.
    Bool,
    /// Pointer into the simulated address space (byte-addressed).
    Ptr,
    /// Absence of a value (a function with no return value).
    Void,
}

impl Type {
    /// Size in bytes of a value of this type when stored in simulated memory.
    ///
    /// # Panics
    ///
    /// Panics for [`Type::Void`], which has no storage representation.
    pub fn size_bytes(self) -> u64 {
        match self {
            Type::I64 | Type::F64 | Type::Ptr => 8,
            Type::Bool => 1,
            Type::Void => panic!("void has no size"),
        }
    }

    /// True if the type is an integer-like type usable in address arithmetic.
    pub fn is_integral(self) -> bool {
        matches!(self, Type::I64 | Type::Bool)
    }

    /// True for [`Type::F64`].
    pub fn is_float(self) -> bool {
        matches!(self, Type::F64)
    }

    /// True for [`Type::Ptr`].
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Bool => "bool",
            Type::Ptr => "ptr",
            Type::Void => "void",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::I64.size_bytes(), 8);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::Ptr.size_bytes(), 8);
        assert_eq!(Type::Bool.size_bytes(), 1);
    }

    #[test]
    #[should_panic(expected = "void has no size")]
    fn void_has_no_size() {
        let _ = Type::Void.size_bytes();
    }

    #[test]
    fn display_names() {
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::Ptr.to_string(), "ptr");
    }

    #[test]
    fn predicates() {
        assert!(Type::I64.is_integral());
        assert!(Type::Bool.is_integral());
        assert!(Type::F64.is_float());
        assert!(Type::Ptr.is_ptr());
        assert!(!Type::F64.is_integral());
    }
}
