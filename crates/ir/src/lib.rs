//! # dae-ir — a small typed SSA intermediate representation
//!
//! This crate is the LLVM-IR stand-in for the CGO 2014 reproduction
//! *"Fix the code. Don't tweak the hardware"*. It provides exactly the IR
//! surface the decoupled access-execute (DAE) compiler transformation needs:
//!
//! * a typed SSA IR with **block parameters** instead of phi nodes (which
//!   makes the clone-and-slice transformation of the paper's §5.2 trivial),
//! * an explicit [`inst::InstKind::Prefetch`] instruction modelling the x86
//!   `prefetcht0` hint the paper lowers loads to,
//! * functions markable as **tasks** — the unit the DAE runtime schedules,
//! * a [`FunctionBuilder`] with structured-loop helpers used to express the
//!   seven evaluation benchmarks,
//! * a printer ([`print_function`], [`print_module`]), a text parser
//!   ([`parse::parse_module`]) and a structural verifier
//!   ([`verify_function`], [`verify_module`]).
//!
//! Analyses (dominators, loops, scalar evolution) live in `dae-analysis`; the
//! interpreter and timing model live in `dae-sim`.
//!
//! # Examples
//!
//! ```
//! use dae_ir::{FunctionBuilder, Module, Type, Value, verify_module};
//!
//! let mut module = Module::new();
//! let a = module.add_global("a", Type::F64, 1024);
//!
//! // task fn sum_a(n: i64) { for i in 0..n { touch a[i] } }
//! let mut b = FunctionBuilder::new("sum_a", vec![Type::I64], Type::Void);
//! b.set_task();
//! b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
//!     let addr = b.elem_addr(Value::Global(a), i, Type::F64);
//!     let _ = b.load(Type::F64, addr);
//! });
//! b.ret(None);
//! module.add_function(b.finish());
//!
//! verify_module(&module)?;
//! # Ok::<(), dae_ir::VerifyError>(())
//! ```

#![warn(missing_docs)]

#[macro_use]
pub mod entity;
pub mod builder;
pub mod dot;
pub mod error;
pub mod function;
pub mod inst;
pub mod module;
pub mod parse;
pub mod print;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use dot::cfg_to_dot;
pub use error::CodedError;
pub use function::{BlockData, Function, InstData};
pub use inst::{BinOp, BlockCall, CmpOp, InstKind, Terminator, UnOp};
pub use module::{GlobalData, GlobalInit, Module};
pub use print::{print_function, print_module};
pub use types::Type;
pub use value::{BlockId, FuncId, GlobalId, InstId, Value};
pub use verify::{verify_function, verify_module, VerifyError};
