//! The workspace-wide error contract.
//!
//! Every fallible layer (parsing, verification, compilation, simulation)
//! exposes its failures as ordinary `std::error::Error` types. This module
//! adds the one extra guarantee network-facing consumers need: a **stable,
//! machine-readable error-code string** per failure class, so a server can
//! put `{"code": "ir.parse", "message": …}` on the wire instead of
//! stringified `Debug` output, and clients can dispatch on `code` without
//! parsing prose.
//!
//! Codes are dotted paths, `<layer>.<class>`, e.g. `ir.parse`,
//! `compile.refused.non-inlinable-call`, `sim.trap`. They are part of the
//! serving protocol's compatibility surface: renaming one is a breaking
//! change, adding one is not. Zero-dependency crates that cannot see this
//! trait (`dae-poly`, `dae-trace`) expose the same contract as an inherent
//! `code()` method with codes from the same namespace.

/// An error with a stable machine-readable code.
///
/// Implementors must keep each variant's code string stable across
/// releases; messages (the `Display` text) may change freely.
pub trait CodedError: std::error::Error {
    /// The stable dotted error code, e.g. `"ir.parse"`.
    fn code(&self) -> &'static str;
}

impl CodedError for crate::parse::ParseError {
    fn code(&self) -> &'static str {
        "ir.parse"
    }
}

impl CodedError for crate::verify::VerifyError {
    fn code(&self) -> &'static str {
        "ir.verify"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::ParseError;
    use crate::verify::VerifyError;

    #[test]
    fn ir_errors_carry_stable_codes() {
        let p = ParseError { line: 3, message: "bad token".into() };
        assert_eq!(p.code(), "ir.parse");
        let v = VerifyError { func: "f".into(), message: "unterminated block".into() };
        assert_eq!(v.code(), "ir.verify");
        // The trait is usable through a dyn reference.
        let as_dyn: &dyn CodedError = &p;
        assert_eq!(as_dyn.code(), "ir.parse");
        assert!(as_dyn.to_string().contains("line 3"));
    }
}
