//! Functions: blocks, instructions and their layout.

use crate::entity::PrimaryMap;
use crate::inst::{InstKind, Terminator};
use crate::types::Type;
use crate::value::{BlockId, InstId, Value};

/// One basic block: typed parameters, an ordered instruction list and a
/// terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockData {
    /// Types of the block's SSA parameters.
    pub params: Vec<Type>,
    /// Instructions in program order.
    pub insts: Vec<InstId>,
    /// The block terminator. `None` only transiently during construction.
    pub term: Option<Terminator>,
}

impl BlockData {
    fn new() -> Self {
        BlockData { params: Vec::new(), insts: Vec::new(), term: None }
    }
}

/// Storage for one instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct InstData {
    /// What the instruction does.
    pub kind: InstKind,
    /// Type of the produced value ([`Type::Void`] for stores/prefetches).
    pub ty: Type,
}

/// A function: an arena of blocks and instructions plus a signature.
///
/// Functions marked [`Function::is_task`] are the units the DAE runtime
/// schedules and the units the compiler generates access phases for.
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name, unique within a module.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type ([`Type::Void`] if none).
    pub ret: Type,
    /// Entry block.
    pub entry: BlockId,
    /// Whether this function is a schedulable task (§3 of the paper).
    pub is_task: bool,
    pub(crate) blocks: PrimaryMap<BlockId, BlockData>,
    pub(crate) insts: PrimaryMap<InstId, InstData>,
}

impl Function {
    /// Creates an empty function with a fresh entry block.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Type) -> Self {
        let mut blocks = PrimaryMap::new();
        let entry = blocks.push(BlockData::new());
        Function {
            name: name.into(),
            params,
            ret,
            entry,
            is_task: false,
            blocks,
            insts: PrimaryMap::new(),
        }
    }

    /// Appends a fresh, empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(BlockData::new())
    }

    /// Adds an SSA parameter of type `ty` to `block`, returning the value.
    pub fn add_block_param(&mut self, block: BlockId, ty: Type) -> Value {
        let data = &mut self.blocks[block];
        let index = data.params.len() as u32;
        data.params.push(ty);
        Value::BlockParam { block, index }
    }

    /// Allocates an instruction (without placing it in any block).
    pub fn create_inst(&mut self, kind: InstKind, ty: Type) -> InstId {
        self.insts.push(InstData { kind, ty })
    }

    /// Appends an already-created instruction to the end of `block`.
    pub fn append_inst(&mut self, block: BlockId, inst: InstId) {
        self.blocks[block].insts.push(inst);
    }

    /// Sets the terminator of `block`.
    pub fn set_terminator(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block].term = Some(term);
    }

    /// Shared access to a block.
    pub fn block(&self, block: BlockId) -> &BlockData {
        &self.blocks[block]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, block: BlockId) -> &mut BlockData {
        &mut self.blocks[block]
    }

    /// Shared access to an instruction.
    pub fn inst(&self, inst: InstId) -> &InstData {
        &self.insts[inst]
    }

    /// Mutable access to an instruction.
    pub fn inst_mut(&mut self, inst: InstId) -> &mut InstData {
        &mut self.insts[inst]
    }

    /// The terminator of `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block has not been terminated yet.
    pub fn terminator(&self, block: BlockId) -> &Terminator {
        self.blocks[block].term.as_ref().expect("block not terminated")
    }

    /// Mutable terminator access.
    pub fn terminator_mut(&mut self, block: BlockId) -> &mut Terminator {
        self.blocks[block].term.as_mut().expect("block not terminated")
    }

    /// Iterates over all block ids in allocation order.
    ///
    /// Blocks unreachable from the entry are included; analyses typically
    /// iterate in reverse postorder instead (see `dae-analysis`).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + 'static {
        self.blocks.keys()
    }

    /// Number of allocated blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of allocated instructions (live or not).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Iterates over all allocated instruction ids.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> + 'static {
        self.insts.keys()
    }

    /// The type of any value in the context of this function.
    pub fn value_type(&self, value: Value) -> Type {
        match value {
            Value::Inst(id) => self.insts[id].ty,
            Value::BlockParam { block, index } => self.blocks[block].params[index as usize],
            Value::Arg(i) => self.params[i as usize],
            Value::ConstI64(_) => Type::I64,
            Value::ConstF64(_) => Type::F64,
            Value::ConstBool(_) => Type::Bool,
            Value::Global(_) => Type::Ptr,
        }
    }

    /// Counts the instructions currently placed in blocks (the "live" size,
    /// as opposed to [`Function::num_insts`] which counts the arena).
    pub fn placed_inst_count(&self) -> usize {
        self.blocks.values().map(|b| b.insts.len()).sum()
    }

    /// Visits `(block, inst)` for every placed instruction in layout order.
    pub fn for_each_placed_inst(&self, mut f: impl FnMut(BlockId, InstId)) {
        for (bb, data) in self.blocks.iter() {
            for &i in &data.insts {
                f(bb, i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, BlockCall};

    fn sample() -> Function {
        let mut f = Function::new("f", vec![Type::I64], Type::I64);
        let entry = f.entry;
        let add = f.create_inst(
            InstKind::Binary { op: BinOp::IAdd, lhs: Value::Arg(0), rhs: Value::i64(1) },
            Type::I64,
        );
        f.append_inst(entry, add);
        f.set_terminator(entry, Terminator::Ret(Some(Value::Inst(add))));
        f
    }

    #[test]
    fn construct_simple_function() {
        let f = sample();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.placed_inst_count(), 1);
        assert_eq!(f.block(f.entry).insts.len(), 1);
        match f.terminator(f.entry) {
            Terminator::Ret(Some(Value::Inst(_))) => {}
            t => panic!("unexpected terminator {t:?}"),
        }
    }

    #[test]
    fn value_types() {
        let f = sample();
        let id = f.block(f.entry).insts[0];
        assert_eq!(f.value_type(Value::Inst(id)), Type::I64);
        assert_eq!(f.value_type(Value::Arg(0)), Type::I64);
        assert_eq!(f.value_type(Value::f64(1.0)), Type::F64);
        assert_eq!(f.value_type(Value::ConstBool(false)), Type::Bool);
    }

    #[test]
    fn block_params() {
        let mut f = Function::new("g", vec![], Type::Void);
        let header = f.add_block();
        let iv = f.add_block_param(header, Type::I64);
        assert_eq!(f.value_type(iv), Type::I64);
        assert_eq!(f.block(header).params.len(), 1);
        f.set_terminator(
            f.entry,
            Terminator::Jump(BlockCall::with_args(header, vec![Value::i64(0)])),
        );
        f.set_terminator(header, Terminator::Ret(None));
        assert_eq!(f.terminator(f.entry).successors().count(), 1);
    }

    #[test]
    #[should_panic(expected = "block not terminated")]
    fn missing_terminator_panics() {
        let f = Function::new("h", vec![], Type::Void);
        let _ = f.terminator(f.entry);
    }
}
