//! Instructions and terminators.

use crate::types::Type;
use crate::value::{BlockId, FuncId, Value};
use std::fmt;

/// Binary arithmetic / bitwise operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition (wrapping).
    IAdd,
    /// Integer subtraction (wrapping).
    ISub,
    /// Integer multiplication (wrapping).
    IMul,
    /// Integer division (signed). Division by zero traps the interpreter.
    IDiv,
    /// Integer remainder (signed).
    IRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Arithmetic (sign-preserving) right shift.
    AShr,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
}

impl BinOp {
    /// True for operators consuming and producing [`Type::F64`].
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMin | BinOp::FMax
        )
    }

    /// Result type of the operator.
    pub fn result_type(self) -> Type {
        if self.is_float() {
            Type::F64
        } else {
            Type::I64
        }
    }

    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::IAdd => "iadd",
            BinOp::ISub => "isub",
            BinOp::IMul => "imul",
            BinOp::IDiv => "idiv",
            BinOp::IRem => "irem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FMin => "fmin",
            BinOp::FMax => "fmax",
        }
    }
}

/// Comparison predicates (signed for integers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The predicate with operands swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logically negated predicate.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    INeg,
    /// Float negation.
    FNeg,
    /// Float square root.
    FSqrt,
    /// Convert i64 → f64.
    IToF,
    /// Convert f64 → i64 (truncating).
    FToI,
    /// Convert ptr → i64 (the raw simulated address).
    PtrToInt,
    /// Convert i64 → ptr.
    IntToPtr,
    /// Boolean not.
    Not,
}

impl UnOp {
    /// Result type of the operator.
    pub fn result_type(self) -> Type {
        match self {
            UnOp::INeg | UnOp::FToI | UnOp::PtrToInt => Type::I64,
            UnOp::FNeg | UnOp::FSqrt | UnOp::IToF => Type::F64,
            UnOp::IntToPtr => Type::Ptr,
            UnOp::Not => Type::Bool,
        }
    }

    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::INeg => "ineg",
            UnOp::FNeg => "fneg",
            UnOp::FSqrt => "fsqrt",
            UnOp::IToF => "itof",
            UnOp::FToI => "ftoi",
            UnOp::PtrToInt => "ptoi",
            UnOp::IntToPtr => "itop",
            UnOp::Not => "not",
        }
    }
}

/// A non-terminator instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// `lhs op rhs`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// `op operand`.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Value,
    },
    /// `lhs pred rhs`, producing a [`Type::Bool`].
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// `cond ? then_value : else_value`.
    Select {
        /// Condition.
        cond: Value,
        /// Value when true.
        then_value: Value,
        /// Value when false.
        else_value: Value,
    },
    /// `base + offset` where `base: ptr`, `offset: i64` (bytes).
    PtrAdd {
        /// Pointer base.
        base: Value,
        /// Byte offset.
        offset: Value,
    },
    /// Load a value of the instruction's result type from `addr`.
    Load {
        /// Address operand (a `ptr`).
        addr: Value,
    },
    /// Store `value` to `addr`. Produces no result.
    Store {
        /// Address operand (a `ptr`).
        addr: Value,
        /// Value stored.
        value: Value,
    },
    /// Software prefetch of the line containing `addr`.
    ///
    /// This is the x86 `prefetcht0`-style hint the paper relies on: it does
    /// not stall retirement and never faults. The timing model gives it
    /// non-blocking miss handling (MLP), and the interpreter gives it no
    /// architectural effect besides warming the cache.
    Prefetch {
        /// Address operand (a `ptr`).
        addr: Value,
    },
    /// Call a function in the same module.
    Call {
        /// Callee.
        callee: FuncId,
        /// Actual arguments.
        args: Vec<Value>,
    },
}

impl InstKind {
    /// Visits every operand of the instruction.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            InstKind::Binary { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::Unary { operand, .. } => f(*operand),
            InstKind::Select { cond, then_value, else_value } => {
                f(*cond);
                f(*then_value);
                f(*else_value);
            }
            InstKind::PtrAdd { base, offset } => {
                f(*base);
                f(*offset);
            }
            InstKind::Load { addr } | InstKind::Prefetch { addr } => f(*addr),
            InstKind::Store { addr, value } => {
                f(*addr);
                f(*value);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
        }
    }

    /// Rewrites every operand through `f` in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            InstKind::Binary { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            InstKind::Unary { operand, .. } => *operand = f(*operand),
            InstKind::Select { cond, then_value, else_value } => {
                *cond = f(*cond);
                *then_value = f(*then_value);
                *else_value = f(*else_value);
            }
            InstKind::PtrAdd { base, offset } => {
                *base = f(*base);
                *offset = f(*offset);
            }
            InstKind::Load { addr } | InstKind::Prefetch { addr } => *addr = f(*addr),
            InstKind::Store { addr, value } => {
                *addr = f(*addr);
                *value = f(*value);
            }
            InstKind::Call { args, .. } => {
                for a in args.iter_mut() {
                    *a = f(*a);
                }
            }
        }
    }

    /// True if the instruction touches simulated memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, InstKind::Load { .. } | InstKind::Store { .. } | InstKind::Prefetch { .. })
    }

    /// True if removing this instruction can change observable behaviour
    /// even when its result is unused.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, InstKind::Store { .. } | InstKind::Call { .. } | InstKind::Prefetch { .. })
    }
}

/// An edge target: a block plus the SSA arguments passed to its parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockCall {
    /// Destination block.
    pub block: BlockId,
    /// Arguments bound to the destination's block parameters.
    pub args: Vec<Value>,
}

impl BlockCall {
    /// Creates an edge target with no arguments.
    pub fn new(block: BlockId) -> Self {
        BlockCall { block, args: Vec::new() }
    }

    /// Creates an edge target with arguments.
    pub fn with_args(block: BlockId, args: Vec<Value>) -> Self {
        BlockCall { block, args }
    }
}

/// The instruction that ends a block.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockCall),
    /// Two-way conditional branch.
    Branch {
        /// Branch condition (a `bool`).
        cond: Value,
        /// Taken when `cond` is true.
        then_dest: BlockCall,
        /// Taken when `cond` is false.
        else_dest: BlockCall,
    },
    /// Return from the function, with an optional value.
    Ret(Option<Value>),
}

impl Terminator {
    /// Visits every operand (condition and edge arguments).
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            Terminator::Jump(dest) => {
                for a in &dest.args {
                    f(*a);
                }
            }
            Terminator::Branch { cond, then_dest, else_dest } => {
                f(*cond);
                for a in &then_dest.args {
                    f(*a);
                }
                for a in &else_dest.args {
                    f(*a);
                }
            }
            Terminator::Ret(Some(v)) => f(*v),
            Terminator::Ret(None) => {}
        }
    }

    /// Rewrites every operand through `f` in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Terminator::Jump(dest) => {
                for a in dest.args.iter_mut() {
                    *a = f(*a);
                }
            }
            Terminator::Branch { cond, then_dest, else_dest } => {
                *cond = f(*cond);
                for a in then_dest.args.iter_mut() {
                    *a = f(*a);
                }
                for a in else_dest.args.iter_mut() {
                    *a = f(*a);
                }
            }
            Terminator::Ret(Some(v)) => *v = f(*v),
            Terminator::Ret(None) => {}
        }
    }

    /// Iterates over successor edges.
    pub fn successors(&self) -> impl Iterator<Item = &BlockCall> {
        let slice: Vec<&BlockCall> = match self {
            Terminator::Jump(d) => vec![d],
            Terminator::Branch { then_dest, else_dest, .. } => vec![then_dest, else_dest],
            Terminator::Ret(_) => vec![],
        };
        slice.into_iter()
    }

    /// Mutable access to successor edges.
    pub fn successors_mut(&mut self) -> Vec<&mut BlockCall> {
        match self {
            Terminator::Jump(d) => vec![d],
            Terminator::Branch { then_dest, else_dest, .. } => vec![then_dest, else_dest],
            Terminator::Ret(_) => vec![],
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_swap_negate() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negated(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
        assert_eq!(CmpOp::Eq.negated(), CmpOp::Ne);
        // double negation is identity
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn operand_visiting() {
        let k = InstKind::Binary { op: BinOp::IAdd, lhs: Value::i64(1), rhs: Value::i64(2) };
        let mut seen = Vec::new();
        k.for_each_operand(|v| seen.push(v));
        assert_eq!(seen, vec![Value::i64(1), Value::i64(2)]);
    }

    #[test]
    fn operand_mapping() {
        let mut k = InstKind::Store { addr: Value::i64(1), value: Value::i64(2) };
        k.map_operands(|v| match v.as_i64() {
            Some(n) => Value::i64(n * 10),
            None => v,
        });
        assert_eq!(k, InstKind::Store { addr: Value::i64(10), value: Value::i64(20) });
    }

    #[test]
    fn side_effects() {
        assert!(InstKind::Store { addr: Value::i64(0), value: Value::i64(0) }.has_side_effects());
        assert!(InstKind::Prefetch { addr: Value::i64(0) }.has_side_effects());
        assert!(!InstKind::Load { addr: Value::i64(0) }.has_side_effects());
        assert!(InstKind::Load { addr: Value::i64(0) }.is_memory());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Value::ConstBool(true),
            then_dest: BlockCall::new(BlockId(1)),
            else_dest: BlockCall::new(BlockId(2)),
        };
        let succ: Vec<_> = t.successors().map(|d| d.block).collect();
        assert_eq!(succ, vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret(None).successors().count(), 0);
    }

    #[test]
    fn float_binop_types() {
        assert_eq!(BinOp::FAdd.result_type(), Type::F64);
        assert_eq!(BinOp::IAdd.result_type(), Type::I64);
        assert!(BinOp::FMin.is_float());
    }
}
