//! Ergonomic construction of IR functions.
//!
//! [`FunctionBuilder`] keeps a current insertion block and offers one method
//! per instruction plus structured-control-flow helpers ([`FunctionBuilder::counted_loop`],
//! [`FunctionBuilder::while_loop`], [`FunctionBuilder::if_then`]) that create
//! the header/body/exit block plumbing with SSA block parameters. All
//! workloads in this repository are built through this API.

use crate::function::Function;
use crate::inst::{BinOp, BlockCall, CmpOp, InstKind, Terminator, UnOp};
use crate::types::Type;
use crate::value::{BlockId, FuncId, Value};

/// Incremental builder for one [`Function`].
///
/// # Examples
///
/// ```
/// use dae_ir::{FunctionBuilder, Type, Value};
///
/// // fn double_sum(n: i64) -> i64 { let mut s = 0; for i in 0..n { s += 2*i; } s }
/// let mut b = FunctionBuilder::new("double_sum", vec![Type::I64], Type::I64);
/// let n = Value::Arg(0);
/// let sums = b.counted_loop_carried(0i64.into(), n, 1i64.into(), vec![0i64.into()], |b, i, carried| {
///     let twice = b.imul(i, 2i64);
///     vec![b.iadd(carried[0], twice)]
/// });
/// b.ret(Some(sums[0]));
/// let func = b.finish();
/// assert!(func.num_blocks() >= 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Starts building a function; the insertion point is its entry block.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Type) -> Self {
        let func = Function::new(name, params, ret);
        let cur = func.entry;
        FunctionBuilder { func, cur }
    }

    /// Consumes the builder, returning the finished function.
    ///
    /// # Panics
    ///
    /// Panics if the current block has no terminator (every path must end in
    /// `ret`/`jump`/`branch`).
    pub fn finish(self) -> Function {
        assert!(
            self.func.block(self.cur).term.is_some(),
            "function {}: current block {} left unterminated",
            self.func.name,
            self.cur
        );
        self.func
    }

    /// The block new instructions are appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Moves the insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// Creates a fresh empty block (does not move the insertion point).
    pub fn create_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Adds an SSA parameter to `block`.
    pub fn block_param(&mut self, block: BlockId, ty: Type) -> Value {
        self.func.add_block_param(block, ty)
    }

    /// Read-only view of the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Marks the function as a schedulable task.
    pub fn set_task(&mut self) {
        self.func.is_task = true;
    }

    fn push(&mut self, kind: InstKind, ty: Type) -> Value {
        let id = self.func.create_inst(kind, ty);
        self.func.append_inst(self.cur, id);
        Value::Inst(id)
    }

    /// Emits a binary operation.
    pub fn binary(&mut self, op: BinOp, lhs: impl Into<Value>, rhs: impl Into<Value>) -> Value {
        let ty = op.result_type();
        self.push(InstKind::Binary { op, lhs: lhs.into(), rhs: rhs.into() }, ty)
    }

    /// Emits a unary operation.
    pub fn unary(&mut self, op: UnOp, operand: impl Into<Value>) -> Value {
        let ty = op.result_type();
        self.push(InstKind::Unary { op, operand: operand.into() }, ty)
    }

    /// Integer add.
    pub fn iadd(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::IAdd, a, b)
    }
    /// Integer subtract.
    pub fn isub(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::ISub, a, b)
    }
    /// Integer multiply.
    pub fn imul(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::IMul, a, b)
    }
    /// Integer divide.
    pub fn idiv(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::IDiv, a, b)
    }
    /// Integer remainder.
    pub fn irem(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::IRem, a, b)
    }
    /// Bitwise and.
    pub fn and(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::And, a, b)
    }
    /// Bitwise xor.
    pub fn xor(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::Xor, a, b)
    }
    /// Left shift.
    pub fn shl(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::Shl, a, b)
    }
    /// Float add.
    pub fn fadd(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::FAdd, a, b)
    }
    /// Float subtract.
    pub fn fsub(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::FSub, a, b)
    }
    /// Float multiply.
    pub fn fmul(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::FMul, a, b)
    }
    /// Float divide.
    pub fn fdiv(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.binary(BinOp::FDiv, a, b)
    }
    /// Float square root.
    pub fn fsqrt(&mut self, a: impl Into<Value>) -> Value {
        self.unary(UnOp::FSqrt, a)
    }
    /// Convert i64 → f64.
    pub fn itof(&mut self, a: impl Into<Value>) -> Value {
        self.unary(UnOp::IToF, a)
    }
    /// Convert f64 → i64.
    pub fn ftoi(&mut self, a: impl Into<Value>) -> Value {
        self.unary(UnOp::FToI, a)
    }

    /// Comparison producing a `bool`.
    pub fn cmp(&mut self, op: CmpOp, lhs: impl Into<Value>, rhs: impl Into<Value>) -> Value {
        self.push(InstKind::Cmp { op, lhs: lhs.into(), rhs: rhs.into() }, Type::Bool)
    }

    /// `cond ? t : e`; the operand types must match.
    pub fn select(
        &mut self,
        cond: impl Into<Value>,
        t: impl Into<Value>,
        e: impl Into<Value>,
    ) -> Value {
        let t = t.into();
        let ty = self.func.value_type(t);
        self.push(InstKind::Select { cond: cond.into(), then_value: t, else_value: e.into() }, ty)
    }

    /// Pointer plus byte offset.
    pub fn ptr_add(&mut self, base: impl Into<Value>, offset: impl Into<Value>) -> Value {
        self.push(InstKind::PtrAdd { base: base.into(), offset: offset.into() }, Type::Ptr)
    }

    /// Address of the `index`-th element of a typed array starting at `base`.
    ///
    /// Scales `index` by `elem_ty.size_bytes()`.
    pub fn elem_addr(
        &mut self,
        base: impl Into<Value>,
        index: impl Into<Value>,
        elem_ty: Type,
    ) -> Value {
        let scaled = self.imul(index, elem_ty.size_bytes() as i64);
        self.ptr_add(base, scaled)
    }

    /// Typed load.
    pub fn load(&mut self, ty: Type, addr: impl Into<Value>) -> Value {
        self.push(InstKind::Load { addr: addr.into() }, ty)
    }

    /// Store.
    pub fn store(&mut self, addr: impl Into<Value>, value: impl Into<Value>) {
        self.push(InstKind::Store { addr: addr.into(), value: value.into() }, Type::Void);
    }

    /// Software prefetch.
    pub fn prefetch(&mut self, addr: impl Into<Value>) {
        self.push(InstKind::Prefetch { addr: addr.into() }, Type::Void);
    }

    /// Call; `ret` must be the callee's return type. Returns `None` for void
    /// callees.
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>, ret: Type) -> Option<Value> {
        let v = self.push(InstKind::Call { callee, args }, ret);
        if ret == Type::Void {
            None
        } else {
            Some(v)
        }
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, dest: BlockId, args: Vec<Value>) {
        self.func.set_terminator(self.cur, Terminator::Jump(BlockCall::with_args(dest, args)));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(
        &mut self,
        cond: impl Into<Value>,
        then_dest: BlockId,
        then_args: Vec<Value>,
        else_dest: BlockId,
        else_args: Vec<Value>,
    ) {
        self.func.set_terminator(
            self.cur,
            Terminator::Branch {
                cond: cond.into(),
                then_dest: BlockCall::with_args(then_dest, then_args),
                else_dest: BlockCall::with_args(else_dest, else_args),
            },
        );
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Value>) {
        self.func.set_terminator(self.cur, Terminator::Ret(value));
    }

    /// Builds `for (i = lo; i < hi; i += step) body(i)` and leaves the
    /// insertion point in the loop exit.
    pub fn counted_loop(
        &mut self,
        lo: Value,
        hi: Value,
        step: Value,
        body: impl FnOnce(&mut Self, Value),
    ) {
        self.counted_loop_carried(lo, hi, step, vec![], |b, i, _| {
            body(b, i);
            vec![]
        });
    }

    /// Builds a counted loop with loop-carried SSA values.
    ///
    /// `init` supplies the entry values of the carried slots; `body` receives
    /// the induction variable and the current carried values and returns the
    /// next-iteration values (same arity). The final carried values are
    /// returned and usable after the loop.
    pub fn counted_loop_carried(
        &mut self,
        lo: Value,
        hi: Value,
        step: Value,
        init: Vec<Value>,
        body: impl FnOnce(&mut Self, Value, &[Value]) -> Vec<Value>,
    ) -> Vec<Value> {
        let carried_tys: Vec<Type> = init.iter().map(|v| self.func.value_type(*v)).collect();
        let header = self.create_block();
        let body_bb = self.create_block();
        let exit = self.create_block();

        let iv = self.block_param(header, Type::I64);
        let carried: Vec<Value> =
            carried_tys.iter().map(|ty| self.func.add_block_param(header, *ty)).collect();

        // entry -> header(lo, init...)
        let mut entry_args = vec![lo];
        entry_args.extend(init);
        self.jump(header, entry_args);

        // header: if iv < hi goto body else exit(carried...)
        self.switch_to(header);
        let cond = self.cmp(CmpOp::Lt, iv, hi);
        self.branch(cond, body_bb, vec![], exit, carried.clone());

        // exit params mirror the carried slots
        let exit_vals: Vec<Value> =
            carried_tys.iter().map(|ty| self.func.add_block_param(exit, *ty)).collect();

        // body
        self.switch_to(body_bb);
        let next = body(self, iv, &carried);
        assert_eq!(next.len(), carried.len(), "carried arity mismatch");
        let next_iv = self.iadd(iv, step);
        let mut back_args = vec![next_iv];
        back_args.extend(next);
        self.jump(header, back_args);

        self.switch_to(exit);
        exit_vals
    }

    /// Builds a general `while` loop with loop-carried state.
    ///
    /// `init` supplies entry values; `cond` is evaluated in the header over
    /// the carried values; `body` returns next-iteration values. Returns the
    /// carried values as visible after the loop.
    pub fn while_loop(
        &mut self,
        init: Vec<Value>,
        cond: impl FnOnce(&mut Self, &[Value]) -> Value,
        body: impl FnOnce(&mut Self, &[Value]) -> Vec<Value>,
    ) -> Vec<Value> {
        let carried_tys: Vec<Type> = init.iter().map(|v| self.func.value_type(*v)).collect();
        let header = self.create_block();
        let body_bb = self.create_block();
        let exit = self.create_block();

        let carried: Vec<Value> =
            carried_tys.iter().map(|ty| self.func.add_block_param(header, *ty)).collect();
        self.jump(header, init);

        self.switch_to(header);
        let c = cond(self, &carried);
        self.branch(c, body_bb, vec![], exit, carried.clone());

        let exit_vals: Vec<Value> =
            carried_tys.iter().map(|ty| self.func.add_block_param(exit, *ty)).collect();

        self.switch_to(body_bb);
        let next = body(self, &carried);
        assert_eq!(next.len(), carried.len(), "carried arity mismatch");
        self.jump(header, next);

        self.switch_to(exit);
        exit_vals
    }

    /// Builds `if (cond) { then() }` with a join block; the insertion point
    /// ends in the join block.
    pub fn if_then(&mut self, cond: Value, then: impl FnOnce(&mut Self)) {
        let then_bb = self.create_block();
        let join = self.create_block();
        self.branch(cond, then_bb, vec![], join, vec![]);
        self.switch_to(then_bb);
        then(self);
        self.jump(join, vec![]);
        self.switch_to(join);
    }

    /// Builds `cond ? then() : else()` where each arm produces values of the
    /// same types, merged as join-block parameters.
    pub fn if_then_else(
        &mut self,
        cond: Value,
        result_tys: Vec<Type>,
        then: impl FnOnce(&mut Self) -> Vec<Value>,
        els: impl FnOnce(&mut Self) -> Vec<Value>,
    ) -> Vec<Value> {
        let then_bb = self.create_block();
        let else_bb = self.create_block();
        let join = self.create_block();
        let join_vals: Vec<Value> =
            result_tys.iter().map(|ty| self.func.add_block_param(join, *ty)).collect();
        self.branch(cond, then_bb, vec![], else_bb, vec![]);

        self.switch_to(then_bb);
        let tv = then(self);
        assert_eq!(tv.len(), join_vals.len(), "then arity mismatch");
        self.jump(join, tv);

        self.switch_to(else_bb);
        let ev = els(self);
        assert_eq!(ev.len(), join_vals.len(), "else arity mismatch");
        self.jump(join, ev);

        self.switch_to(join);
        join_vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straightline() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64, Type::I64], Type::I64);
        let s = b.iadd(Value::Arg(0), Value::Arg(1));
        let p = b.imul(s, 3i64);
        b.ret(Some(p));
        let f = b.finish();
        assert_eq!(f.placed_inst_count(), 2);
    }

    #[test]
    fn counted_loop_shape() {
        let mut b = FunctionBuilder::new("loop", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let _ = b.imul(i, i);
        });
        b.ret(None);
        let f = b.finish();
        // entry + header + body + exit
        assert_eq!(f.num_blocks(), 4);
    }

    #[test]
    fn carried_values_flow_to_exit() {
        let mut b = FunctionBuilder::new("sum", vec![Type::I64], Type::I64);
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::i64(0)],
            |b, i, c| vec![b.iadd(c[0], i)],
        );
        b.ret(Some(out[0]));
        let f = b.finish();
        // exit block carries one param
        match out[0] {
            Value::BlockParam { .. } => {}
            v => panic!("expected block param, got {v:?}"),
        }
        assert_eq!(f.num_blocks(), 4);
    }

    #[test]
    fn if_then_else_merges() {
        let mut b = FunctionBuilder::new("max", vec![Type::I64, Type::I64], Type::I64);
        let c = b.cmp(CmpOp::Gt, Value::Arg(0), Value::Arg(1));
        let m =
            b.if_then_else(c, vec![Type::I64], |_| vec![Value::Arg(0)], |_| vec![Value::Arg(1)]);
        b.ret(Some(m[0]));
        let f = b.finish();
        assert_eq!(f.num_blocks(), 4);
    }

    #[test]
    #[should_panic(expected = "carried arity mismatch")]
    fn arity_mismatch_panics() {
        let mut b = FunctionBuilder::new("bad", vec![], Type::Void);
        b.counted_loop_carried(
            Value::i64(0),
            Value::i64(4),
            Value::i64(1),
            vec![Value::i64(0)],
            |_, _, _| vec![],
        );
    }

    #[test]
    #[should_panic(expected = "left unterminated")]
    fn finish_requires_terminator() {
        let b = FunctionBuilder::new("open", vec![], Type::Void);
        let _ = b.finish();
    }

    #[test]
    fn while_loop_shape() {
        let mut b = FunctionBuilder::new("w", vec![Type::I64], Type::I64);
        let out = b.while_loop(
            vec![Value::Arg(0)],
            |b, c| b.cmp(CmpOp::Gt, c[0], 0i64),
            |b, c| vec![b.isub(c[0], 1i64)],
        );
        b.ret(Some(out[0]));
        let f = b.finish();
        assert_eq!(f.num_blocks(), 4);
    }
}
