//! Structural verification of functions and modules.
//!
//! The verifier checks the invariants every analysis and transform in this
//! workspace relies on: blocks are terminated, edge arguments match block
//! parameter signatures, operand types agree with instruction signatures, and
//! instruction/block references stay in bounds. (SSA *dominance* is verified
//! separately in `dae-analysis`, which owns the dominator tree.)

use crate::function::Function;
use crate::inst::{InstKind, Terminator};
use crate::module::Module;
use crate::types::Type;
use crate::value::{BlockId, Value};
use std::collections::HashSet;
use std::fmt;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the failure occurred.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in `{}`: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

fn err(func: &Function, message: impl Into<String>) -> VerifyError {
    VerifyError { func: func.name.clone(), message: message.into() }
}

/// Verifies one function. `module` enables call-signature checking.
///
/// # Errors
///
/// Returns the first violated invariant found.
pub fn verify_function(func: &Function, module: Option<&Module>) -> Result<(), VerifyError> {
    let mut placed: HashSet<crate::value::InstId> = HashSet::new();
    for bb in func.block_ids() {
        let data = func.block(bb);
        for &inst in &data.insts {
            if !placed.insert(inst) {
                return Err(err(func, format!("instruction {inst} placed more than once")));
            }
            verify_inst(func, module, bb, inst)?;
        }
        let term = match &data.term {
            Some(t) => t,
            None => return Err(err(func, format!("block {bb} has no terminator"))),
        };
        verify_terminator(func, bb, term)?;
    }
    Ok(())
}

fn verify_value(func: &Function, bb: BlockId, v: Value) -> Result<(), VerifyError> {
    match v {
        Value::Inst(id) if id.0 as usize >= func.num_insts() => {
            return Err(err(func, format!("block {bb}: reference to unallocated inst {id}")));
        }
        Value::BlockParam { block, index } => {
            if block.0 as usize >= func.num_blocks() {
                return Err(err(func, format!("block {bb}: param of unallocated block {block}")));
            }
            if index as usize >= func.block(block).params.len() {
                return Err(err(
                    func,
                    format!("block {bb}: block param index {index} out of range for {block}"),
                ));
            }
        }
        Value::Arg(i) if i as usize >= func.params.len() => {
            return Err(err(func, format!("block {bb}: argument index {i} out of range")));
        }
        _ => {}
    }
    Ok(())
}

fn expect_type(
    func: &Function,
    bb: BlockId,
    what: &str,
    v: Value,
    expected: Type,
) -> Result<(), VerifyError> {
    let actual = func.value_type(v);
    if actual != expected {
        return Err(err(
            func,
            format!("block {bb}: {what} has type {actual}, expected {expected}"),
        ));
    }
    Ok(())
}

fn verify_inst(
    func: &Function,
    module: Option<&Module>,
    bb: BlockId,
    inst: crate::value::InstId,
) -> Result<(), VerifyError> {
    let data = func.inst(inst);
    let mut operand_err = Ok(());
    data.kind.for_each_operand(|v| {
        if operand_err.is_ok() {
            operand_err = verify_value(func, bb, v);
        }
    });
    operand_err?;

    match &data.kind {
        InstKind::Binary { op, lhs, rhs } => {
            let want = if op.is_float() { Type::F64 } else { Type::I64 };
            expect_type(func, bb, "binary lhs", *lhs, want)?;
            expect_type(func, bb, "binary rhs", *rhs, want)?;
            if data.ty != op.result_type() {
                return Err(err(func, format!("block {bb}: {inst} result type mismatch")));
            }
        }
        InstKind::Unary { op, operand } => {
            use crate::inst::UnOp::*;
            let want = match op {
                INeg | IToF | IntToPtr => Type::I64,
                FNeg | FSqrt | FToI => Type::F64,
                PtrToInt => Type::Ptr,
                Not => Type::Bool,
            };
            expect_type(func, bb, "unary operand", *operand, want)?;
        }
        InstKind::Cmp { lhs, rhs, .. } => {
            let lt = func.value_type(*lhs);
            let rt = func.value_type(*rhs);
            if lt != rt {
                return Err(err(
                    func,
                    format!("block {bb}: cmp operand types differ ({lt} vs {rt})"),
                ));
            }
            if data.ty != Type::Bool {
                return Err(err(func, format!("block {bb}: cmp result must be bool")));
            }
        }
        InstKind::Select { cond, then_value, else_value } => {
            expect_type(func, bb, "select cond", *cond, Type::Bool)?;
            let tt = func.value_type(*then_value);
            let et = func.value_type(*else_value);
            if tt != et || tt != data.ty {
                return Err(err(func, format!("block {bb}: select arm types differ")));
            }
        }
        InstKind::PtrAdd { base, offset } => {
            expect_type(func, bb, "ptradd base", *base, Type::Ptr)?;
            expect_type(func, bb, "ptradd offset", *offset, Type::I64)?;
            if data.ty != Type::Ptr {
                return Err(err(func, format!("block {bb}: ptradd must produce ptr")));
            }
        }
        InstKind::Load { addr } => {
            expect_type(func, bb, "load address", *addr, Type::Ptr)?;
            if data.ty == Type::Void {
                return Err(err(func, format!("block {bb}: load must produce a value")));
            }
        }
        InstKind::Store { addr, .. } => {
            expect_type(func, bb, "store address", *addr, Type::Ptr)?;
            if data.ty != Type::Void {
                return Err(err(func, format!("block {bb}: store produces no value")));
            }
        }
        InstKind::Prefetch { addr } => {
            expect_type(func, bb, "prefetch address", *addr, Type::Ptr)?;
        }
        InstKind::Call { callee, args } => {
            if let Some(m) = module {
                if callee.0 as usize >= m.num_funcs() {
                    return Err(err(func, format!("block {bb}: call to unallocated {callee}")));
                }
                let sig = m.func(*callee);
                if sig.params.len() != args.len() {
                    return Err(err(
                        func,
                        format!(
                            "block {bb}: call to `{}` passes {} args, expected {}",
                            sig.name,
                            args.len(),
                            sig.params.len()
                        ),
                    ));
                }
                for (i, (a, want)) in args.iter().zip(&sig.params).enumerate() {
                    expect_type(func, bb, &format!("call arg {i}"), *a, *want)?;
                }
                if data.ty != sig.ret {
                    return Err(err(func, format!("block {bb}: call result type mismatch")));
                }
            }
        }
    }
    Ok(())
}

fn verify_terminator(func: &Function, bb: BlockId, term: &Terminator) -> Result<(), VerifyError> {
    let mut operand_err = Ok(());
    term.for_each_operand(|v| {
        if operand_err.is_ok() {
            operand_err = verify_value(func, bb, v);
        }
    });
    operand_err?;

    if let Terminator::Branch { cond, .. } = term {
        expect_type(func, bb, "branch condition", *cond, Type::Bool)?;
    }
    if let Terminator::Ret(v) = term {
        match (v, func.ret) {
            (None, Type::Void) => {}
            (Some(_), Type::Void) => {
                return Err(err(func, format!("block {bb}: void function returns a value")))
            }
            (None, _) => return Err(err(func, format!("block {bb}: missing return value"))),
            (Some(v), want) => expect_type(func, bb, "return value", *v, want)?,
        }
    }
    for dest in term.successors() {
        if dest.block.0 as usize >= func.num_blocks() {
            return Err(err(func, format!("block {bb}: edge to unallocated {}", dest.block)));
        }
        let params = &func.block(dest.block).params;
        if params.len() != dest.args.len() {
            return Err(err(
                func,
                format!(
                    "block {bb}: edge to {} passes {} args, expected {}",
                    dest.block,
                    dest.args.len(),
                    params.len()
                ),
            ));
        }
        for (i, (a, want)) in dest.args.iter().zip(params).enumerate() {
            expect_type(func, bb, &format!("edge arg {i} to {}", dest.block), *a, *want)?;
        }
    }
    Ok(())
}

/// Verifies every function in a module.
///
/// # Errors
///
/// Returns the first violated invariant found across all functions.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for (_, f) in module.funcs() {
        verify_function(f, Some(module))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;

    #[test]
    fn accepts_well_formed() {
        let mut b = FunctionBuilder::new("ok", vec![Type::I64], Type::I64);
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::i64(0)],
            |b, i, c| vec![b.iadd(c[0], i)],
        );
        b.ret(Some(out[0]));
        let f = b.finish();
        verify_function(&f, None).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut f = Function::new("bad", vec![], Type::Void);
        let entry = f.entry;
        let i = f.create_inst(
            InstKind::Binary { op: BinOp::FAdd, lhs: Value::i64(1), rhs: Value::i64(2) },
            Type::F64,
        );
        f.append_inst(entry, i);
        f.set_terminator(entry, Terminator::Ret(None));
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.message.contains("expected f64"), "{e}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let f = Function::new("open", vec![], Type::Void);
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.message.contains("no terminator"), "{e}");
    }

    #[test]
    fn rejects_edge_arity_mismatch() {
        let mut f = Function::new("edge", vec![], Type::Void);
        let entry = f.entry;
        let b2 = f.add_block();
        f.add_block_param(b2, Type::I64);
        f.set_terminator(entry, Terminator::Jump(crate::inst::BlockCall::new(b2)));
        f.set_terminator(b2, Terminator::Ret(None));
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.message.contains("passes 0 args, expected 1"), "{e}");
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut f = Function::new("retbad", vec![], Type::I64);
        f.set_terminator(f.entry, Terminator::Ret(None));
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.message.contains("missing return value"), "{e}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new();
        let mut cb = FunctionBuilder::new("callee", vec![Type::I64], Type::Void);
        cb.ret(None);
        let callee = m.add_function(cb.finish());
        let mut b = FunctionBuilder::new("caller", vec![], Type::Void);
        b.call(callee, vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("passes 0 args, expected 1"), "{e}");
    }

    #[test]
    fn rejects_double_placement() {
        let mut f = Function::new("dup", vec![], Type::Void);
        let entry = f.entry;
        let i = f.create_inst(
            InstKind::Prefetch { addr: Value::Global(crate::value::GlobalId(0)) },
            Type::Void,
        );
        f.append_inst(entry, i);
        f.append_inst(entry, i);
        f.set_terminator(entry, Terminator::Ret(None));
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.message.contains("placed more than once"), "{e}");
    }
}
