//! Textual form of the IR, used for debugging, docs and golden tests.

use crate::function::Function;
use crate::inst::{InstKind, Terminator};
use crate::module::Module;
use crate::types::Type;
use crate::value::{BlockId, InstId};
use std::fmt::Write;

/// Renders one instruction (without its result binding).
fn format_inst_kind(module: Option<&Module>, kind: &InstKind) -> String {
    match kind {
        InstKind::Binary { op, lhs, rhs } => format!("{op} {lhs}, {rhs}"),
        InstKind::Unary { op, operand } => format!("{op} {operand}"),
        InstKind::Cmp { op, lhs, rhs } => format!("icmp {op} {lhs}, {rhs}"),
        InstKind::Select { cond, then_value, else_value } => {
            format!("select {cond}, {then_value}, {else_value}")
        }
        InstKind::PtrAdd { base, offset } => format!("ptradd {base}, {offset}"),
        InstKind::Load { addr } => format!("load {addr}"),
        InstKind::Store { addr, value } => format!("store {addr}, {value}"),
        InstKind::Prefetch { addr } => format!("prefetch {addr}"),
        InstKind::Call { callee, args } => {
            let name =
                module.map(|m| m.func(*callee).name.clone()).unwrap_or_else(|| format!("{callee}"));
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("call {name}({})", args.join(", "))
        }
    }
}

fn format_block_call(call: &crate::inst::BlockCall) -> String {
    if call.args.is_empty() {
        format!("{}", call.block)
    } else {
        let args: Vec<String> = call.args.iter().map(|a| a.to_string()).collect();
        format!("{}({})", call.block, args.join(", "))
    }
}

/// Pretty-prints a function. Pass the owning module to resolve callee names.
pub fn print_function(func: &Function, module: Option<&Module>) -> String {
    let mut out = String::new();
    let params: Vec<String> =
        func.params.iter().enumerate().map(|(i, t)| format!("arg{i}: {t}")).collect();
    let task = if func.is_task { "task " } else { "" };
    let ret = if func.ret == Type::Void { String::new() } else { format!(" -> {}", func.ret) };
    let _ = writeln!(out, "{task}fn {}({}){} {{", func.name, params.join(", "), ret);
    for bb in func.block_ids() {
        print_block(&mut out, func, module, bb);
    }
    out.push_str("}\n");
    out
}

fn print_block(out: &mut String, func: &Function, module: Option<&Module>, bb: BlockId) {
    let data = func.block(bb);
    let params: Vec<String> =
        data.params.iter().enumerate().map(|(i, t)| format!("{bb}p{i}: {t}")).collect();
    if params.is_empty() {
        let _ = writeln!(out, "{bb}:");
    } else {
        let _ = writeln!(out, "{bb}({}):", params.join(", "));
    }
    for &inst in &data.insts {
        print_inst(out, func, module, inst);
    }
    match &data.term {
        Some(Terminator::Jump(dest)) => {
            let _ = writeln!(out, "  jump {}", format_block_call(dest));
        }
        Some(Terminator::Branch { cond, then_dest, else_dest }) => {
            let _ = writeln!(
                out,
                "  br {cond}, {}, {}",
                format_block_call(then_dest),
                format_block_call(else_dest)
            );
        }
        Some(Terminator::Ret(Some(v))) => {
            let _ = writeln!(out, "  ret {v}");
        }
        Some(Terminator::Ret(None)) => {
            let _ = writeln!(out, "  ret");
        }
        None => {
            let _ = writeln!(out, "  <unterminated>");
        }
    }
}

fn print_inst(out: &mut String, func: &Function, module: Option<&Module>, inst: InstId) {
    let data = func.inst(inst);
    if data.ty == Type::Void {
        let _ = writeln!(out, "  {}", format_inst_kind(module, &data.kind));
    } else {
        let _ = writeln!(out, "  {inst}: {} = {}", data.ty, format_inst_kind(module, &data.kind));
    }
}

/// Pretty-prints a whole module (globals, then functions).
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for (id, g) in module.globals() {
        let _ = writeln!(out, "global {id} {} : {} x {}", g.name, g.len, g.elem_ty);
    }
    if module.num_globals() > 0 {
        out.push('\n');
    }
    for (_, f) in module.funcs() {
        out.push_str(&print_function(f, Some(module)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::value::Value;

    #[test]
    fn prints_simple_function() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
        let v = b.iadd(Value::Arg(0), 1i64);
        b.ret(Some(v));
        let text = print_function(&b.finish(), None);
        assert!(text.contains("fn f(arg0: i64) -> i64 {"), "{text}");
        assert!(text.contains("v0: i64 = iadd arg0, 1"), "{text}");
        assert!(text.contains("ret v0"), "{text}");
    }

    #[test]
    fn prints_loops_with_block_args() {
        let mut b = FunctionBuilder::new("l", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let a = b.imul(i, 8i64);
            let p = b.ptr_add(Value::Global(crate::value::GlobalId(0)), a);
            b.prefetch(p);
        });
        b.ret(None);
        let text = print_function(&b.finish(), None);
        assert!(text.contains("jump bb1(0)"), "{text}");
        assert!(text.contains("br v0, bb2, bb3"), "{text}");
        assert!(text.contains("prefetch"), "{text}");
    }

    #[test]
    fn prints_module_with_globals() {
        let mut m = Module::new();
        m.add_global("a", Type::F64, 64);
        let mut b = FunctionBuilder::new("t", vec![], Type::Void);
        b.ret(None);
        let mut f = b.finish();
        f.is_task = true;
        m.add_function(f);
        let text = print_module(&m);
        assert!(text.contains("global g0 a : 64 x f64"), "{text}");
        assert!(text.contains("task fn t()"), "{text}");
    }

    #[test]
    fn call_uses_function_name() {
        let mut m = Module::new();
        let mut cb = FunctionBuilder::new("callee", vec![Type::I64], Type::I64);
        cb.ret(Some(Value::Arg(0)));
        let callee = m.add_function(cb.finish());
        let mut b = FunctionBuilder::new("caller", vec![], Type::Void);
        b.call(callee, vec![Value::i64(3)], Type::I64);
        b.ret(None);
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("call callee(3)"), "{text}");
    }
}
