//! Graphviz (DOT) rendering of a function's control-flow graph.
//!
//! Handy while debugging transforms: `dot -Tpng out.dot -o out.png`.

use crate::function::Function;
use crate::inst::Terminator;
use crate::module::Module;
use crate::print::print_function;
use std::fmt::Write;

/// Renders the CFG of `func` in DOT format; each node shows the block's
/// instruction count, edges are labelled with their argument count.
pub fn cfg_to_dot(func: &Function, module: Option<&Module>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", func.name);
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for bb in func.block_ids() {
        let data = func.block(bb);
        let tag = if bb == func.entry { " (entry)" } else { "" };
        let _ = writeln!(
            out,
            "  \"{bb}\" [label=\"{bb}{tag}\\n{} params, {} insts\"];",
            data.params.len(),
            data.insts.len()
        );
        match &data.term {
            Some(Terminator::Jump(d)) => {
                let _ =
                    writeln!(out, "  \"{bb}\" -> \"{}\" [label=\"{}\"];", d.block, d.args.len());
            }
            Some(Terminator::Branch { then_dest, else_dest, .. }) => {
                let _ = writeln!(
                    out,
                    "  \"{bb}\" -> \"{}\" [label=\"T/{}\"];",
                    then_dest.block,
                    then_dest.args.len()
                );
                let _ = writeln!(
                    out,
                    "  \"{bb}\" -> \"{}\" [label=\"F/{}\"];",
                    else_dest.block,
                    else_dest.args.len()
                );
            }
            Some(Terminator::Ret(_)) => {
                let _ = writeln!(out, "  \"{bb}\" -> \"ret\" [style=dashed];");
            }
            None => {}
        }
    }
    let _ = writeln!(out, "  \"ret\" [shape=plaintext];");
    // Full text as a comment for convenience.
    for line in print_function(func, module).lines() {
        let _ = writeln!(out, "  // {line}");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Value;

    #[test]
    fn renders_loop_cfg() {
        let mut b = FunctionBuilder::new("l", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |_, _| {});
        b.ret(None);
        let f = b.finish();
        let dot = cfg_to_dot(&f, None);
        assert!(dot.starts_with("digraph \"l\" {"));
        assert!(dot.contains("bb0") && dot.contains("bb1"));
        assert!(dot.contains("-> \"ret\""));
        assert!(dot.contains("label=\"T/"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn entry_is_marked() {
        let mut b = FunctionBuilder::new("e", vec![], Type::Void);
        b.ret(None);
        let dot = cfg_to_dot(&b.finish(), None);
        assert!(dot.contains("(entry)"));
    }
}
