//! Values: the operands of instructions.

#[allow(unused_imports)]
use crate::entity_id;
use std::fmt;

entity_id!(pub struct InstId, "v");
entity_id!(pub struct BlockId, "bb");
entity_id!(pub struct FuncId, "fn");
entity_id!(pub struct GlobalId, "g");

/// An SSA value usable as an instruction operand.
///
/// Values are small and `Copy`; constants are inlined rather than allocated,
/// which keeps def-use bookkeeping confined to [`Value::Inst`] and
/// [`Value::BlockParam`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// Result of the instruction `InstId`.
    Inst(InstId),
    /// The `index`-th parameter of block `block` (SSA block arguments; these
    /// play the role LLVM phi nodes play).
    BlockParam {
        /// Owning block.
        block: BlockId,
        /// Index into the block's parameter list.
        index: u32,
    },
    /// The `index`-th argument of the enclosing function.
    Arg(u32),
    /// Integer literal.
    ConstI64(i64),
    /// Float literal, stored as raw bits so `Value` is `Eq + Hash`.
    ConstF64(u64),
    /// Boolean literal.
    ConstBool(bool),
    /// The base address of a module global.
    Global(GlobalId),
}

impl Value {
    /// Convenience constructor for a float constant.
    pub fn f64(v: f64) -> Value {
        Value::ConstF64(v.to_bits())
    }

    /// Convenience constructor for an integer constant.
    pub fn i64(v: i64) -> Value {
        Value::ConstI64(v)
    }

    /// Returns the float payload if this is a float constant.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Value::ConstF64(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// Returns the integer payload if this is an integer constant.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Value::ConstI64(v) => Some(v),
            _ => None,
        }
    }

    /// True if the value is a literal (needs no definition point).
    pub fn is_const(self) -> bool {
        matches!(
            self,
            Value::ConstI64(_) | Value::ConstF64(_) | Value::ConstBool(_) | Value::Global(_)
        )
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(id) => write!(f, "{id}"),
            Value::BlockParam { block, index } => write!(f, "{block}p{index}"),
            Value::Arg(i) => write!(f, "arg{i}"),
            Value::ConstI64(v) => write!(f, "{v}"),
            Value::ConstF64(bits) => write!(f, "{:?}", f64::from_bits(*bits)),
            Value::ConstBool(b) => write!(f, "{b}"),
            Value::Global(g) => write!(f, "@{g}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::ConstI64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::f64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::ConstBool(v)
    }
}

impl From<InstId> for Value {
    fn from(id: InstId) -> Value {
        Value::Inst(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_constants_round_trip() {
        let v = Value::f64(3.25);
        assert_eq!(v.as_f64(), Some(3.25));
        assert_eq!(Value::i64(7).as_i64(), Some(7));
        assert_eq!(Value::i64(7).as_f64(), None);
    }

    #[test]
    fn constness() {
        assert!(Value::i64(0).is_const());
        assert!(Value::f64(0.0).is_const());
        assert!(Value::ConstBool(true).is_const());
        assert!(Value::Global(GlobalId(0)).is_const());
        assert!(!Value::Inst(InstId(0)).is_const());
        assert!(!Value::Arg(0).is_const());
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Inst(InstId(3)).to_string(), "v3");
        assert_eq!(Value::Arg(1).to_string(), "arg1");
        assert_eq!(Value::BlockParam { block: BlockId(2), index: 0 }.to_string(), "bb2p0");
        assert_eq!(Value::i64(-4).to_string(), "-4");
        assert_eq!(Value::Global(GlobalId(5)).to_string(), "@g5");
    }

    #[test]
    fn nan_constants_are_eq() {
        // Bit-level storage makes two identical NaNs compare equal, which is
        // what we need for hashing values in maps during transforms.
        let a = Value::f64(f64::NAN);
        let b = Value::f64(f64::NAN);
        assert_eq!(a, b);
    }
}
