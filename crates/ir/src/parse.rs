//! Parser for the textual IR format produced by [`crate::print`].
//!
//! The grammar is line-oriented and mirrors the printer exactly, so
//! `parse_module(&print_module(&m))` round-trips every module this workspace
//! produces. The parser exists for golden tests and for writing small IR
//! snippets by hand in integration tests.

use crate::function::Function;
use crate::inst::{BinOp, BlockCall, CmpOp, InstKind, Terminator, UnOp};
use crate::module::{GlobalData, GlobalInit, Module};
use crate::types::Type;
use crate::value::{BlockId, FuncId, GlobalId, InstId, Value};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn perr(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_type(line: usize, s: &str) -> Result<Type, ParseError> {
    match s {
        "i64" => Ok(Type::I64),
        "f64" => Ok(Type::F64),
        "bool" => Ok(Type::Bool),
        "ptr" => Ok(Type::Ptr),
        "void" => Ok(Type::Void),
        other => Err(perr(line, format!("unknown type `{other}`"))),
    }
}

fn binop_from_mnemonic(s: &str) -> Option<BinOp> {
    use BinOp::*;
    Some(match s {
        "iadd" => IAdd,
        "isub" => ISub,
        "imul" => IMul,
        "idiv" => IDiv,
        "irem" => IRem,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "ashr" => AShr,
        "fadd" => FAdd,
        "fsub" => FSub,
        "fmul" => FMul,
        "fdiv" => FDiv,
        "fmin" => FMin,
        "fmax" => FMax,
        _ => return None,
    })
}

fn unop_from_mnemonic(s: &str) -> Option<UnOp> {
    use UnOp::*;
    Some(match s {
        "ineg" => INeg,
        "fneg" => FNeg,
        "fsqrt" => FSqrt,
        "itof" => IToF,
        "ftoi" => FToI,
        "ptoi" => PtrToInt,
        "itop" => IntToPtr,
        "not" => Not,
        _ => return None,
    })
}

fn cmpop_from_mnemonic(line: usize, s: &str) -> Result<CmpOp, ParseError> {
    Ok(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => return Err(perr(line, format!("unknown cmp predicate `{other}`"))),
    })
}

/// Per-function symbol environment built in the first pass.
struct FuncEnv {
    blocks: HashMap<String, BlockId>,
    insts: HashMap<String, InstId>,
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    func_names: HashMap<String, FuncId>,
    global_names: HashMap<String, GlobalId>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with("//"))
            .collect();
        Parser { lines, pos: 0, func_names: HashMap::new(), global_names: HashMap::new() }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        self.pos += 1;
        l
    }

    fn parse_value(&self, env: &FuncEnv, line: usize, tok: &str) -> Result<Value, ParseError> {
        let tok = tok.trim();
        if tok == "true" {
            return Ok(Value::ConstBool(true));
        }
        if tok == "false" {
            return Ok(Value::ConstBool(false));
        }
        if let Some(rest) = tok.strip_prefix('@') {
            if let Some(&g) = self.global_names.get(rest) {
                return Ok(Value::Global(g));
            }
            if let Some(num) = rest.strip_prefix('g').and_then(|n| n.parse::<u32>().ok()) {
                return Ok(Value::Global(GlobalId(num)));
            }
            return Err(perr(line, format!("unknown global `{tok}`")));
        }
        if let Some(rest) = tok.strip_prefix("arg") {
            if let Ok(i) = rest.parse::<u32>() {
                return Ok(Value::Arg(i));
            }
        }
        if tok.starts_with('v') {
            if let Some(&id) = env.insts.get(tok) {
                return Ok(Value::Inst(id));
            }
        }
        // Block params print as `bbNpM`.
        if tok.starts_with("bb") {
            if let Some(p) = tok.rfind('p') {
                let (bname, pidx) = tok.split_at(p);
                if let (Some(&b), Ok(i)) = (env.blocks.get(bname), pidx[1..].parse::<u32>()) {
                    return Ok(Value::BlockParam { block: b, index: i });
                }
            }
        }
        if let Ok(i) = tok.parse::<i64>() {
            return Ok(Value::ConstI64(i));
        }
        if let Ok(f) = tok.parse::<f64>() {
            return Ok(Value::f64(f));
        }
        Err(perr(line, format!("cannot parse value `{tok}`")))
    }

    fn parse_block_call(
        &self,
        env: &FuncEnv,
        line: usize,
        tok: &str,
    ) -> Result<BlockCall, ParseError> {
        let tok = tok.trim();
        if let Some(open) = tok.find('(') {
            let name = &tok[..open];
            let inner = tok[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| perr(line, format!("unterminated edge args in `{tok}`")))?;
            let block = *env
                .blocks
                .get(name)
                .ok_or_else(|| perr(line, format!("unknown block `{name}`")))?;
            let mut args = Vec::new();
            for a in split_top_level(inner) {
                args.push(self.parse_value(env, line, a)?);
            }
            Ok(BlockCall::with_args(block, args))
        } else {
            let block =
                *env.blocks.get(tok).ok_or_else(|| perr(line, format!("unknown block `{tok}`")))?;
            Ok(BlockCall::new(block))
        }
    }
}

/// Splits a comma-separated list that may contain parenthesised sub-lists.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

/// Parses a module in the textual format of [`crate::print::print_module`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input.
///
/// # Examples
///
/// ```
/// let text = "
/// global g0 a : 8 x f64
///
/// task fn touch() {
/// bb0:
///   v0: ptr = ptradd @g0, 16
///   prefetch v0
///   ret
/// }
/// ";
/// let module = dae_ir::parse::parse_module(text)?;
/// assert_eq!(module.num_funcs(), 1);
/// # Ok::<(), dae_ir::parse::ParseError>(())
/// ```
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut p = Parser::new(text);
    let mut module = Module::new();

    // Pass 0: pre-scan function names so calls can reference later functions.
    {
        let mut order = 0u32;
        for &(ln, l) in &p.lines {
            if let Some(rest) = l.strip_prefix("task fn ").or_else(|| l.strip_prefix("fn ")) {
                let name = rest
                    .split('(')
                    .next()
                    .ok_or_else(|| perr(ln, "malformed fn header"))?
                    .trim()
                    .to_string();
                p.func_names.insert(name, FuncId(order));
                order += 1;
            }
        }
    }

    while let Some((ln, l)) = p.peek() {
        if let Some(rest) = l.strip_prefix("global ") {
            p.next();
            // global g0 NAME : LEN x TY
            let mut parts = rest.split_whitespace();
            let _id = parts.next().ok_or_else(|| perr(ln, "missing global id"))?;
            let name = parts.next().ok_or_else(|| perr(ln, "missing global name"))?;
            let colon = parts.next();
            if colon != Some(":") {
                return Err(perr(ln, "expected `:` in global"));
            }
            let len: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(ln, "bad global length"))?;
            if parts.next() != Some("x") {
                return Err(perr(ln, "expected `x` in global"));
            }
            let ty = parse_type(ln, parts.next().ok_or_else(|| perr(ln, "missing elem type"))?)?;
            let g = module.add_global_init(GlobalData {
                name: name.to_string(),
                elem_ty: ty,
                len,
                init: GlobalInit::Zero,
            });
            p.global_names.insert(name.to_string(), g);
        } else if l.starts_with("fn ") || l.starts_with("task fn ") {
            let func = parse_function(&mut p)?;
            module.add_function(func);
        } else {
            return Err(perr(ln, format!("unexpected line `{l}`")));
        }
    }
    Ok(module)
}

fn parse_function(p: &mut Parser<'_>) -> Result<Function, ParseError> {
    let (hln, header) = p.next().expect("caller checked");
    let is_task = header.starts_with("task ");
    let header = header.strip_prefix("task ").unwrap_or(header);
    let header = header.strip_prefix("fn ").ok_or_else(|| perr(hln, "expected `fn`"))?;
    let open = header.find('(').ok_or_else(|| perr(hln, "missing `(`"))?;
    let name = header[..open].trim().to_string();
    let close = header.find(')').ok_or_else(|| perr(hln, "missing `)`"))?;
    let mut params = Vec::new();
    for part in split_top_level(&header[open + 1..close]) {
        let ty_s = part
            .split(':')
            .nth(1)
            .ok_or_else(|| perr(hln, format!("malformed param `{part}`")))?
            .trim();
        params.push(parse_type(hln, ty_s)?);
    }
    let after = header[close + 1..].trim();
    let ret = if let Some(r) = after.strip_prefix("->") {
        parse_type(hln, r.trim_end_matches('{').trim())?
    } else {
        Type::Void
    };

    // First pass over the body: collect blocks (with params) and value names.
    let body_start = p.pos;
    let mut env = FuncEnv { blocks: HashMap::new(), insts: HashMap::new() };
    let mut func = Function::new(name, params, ret);
    func.is_task = is_task;
    let mut block_order: Vec<(String, Vec<Type>)> = Vec::new();
    // One entry per instruction in appearance order: `Some(name)` for value
    // definitions, `None` for void instructions (store/prefetch/void call).
    // Allocating both kinds in this order keeps instruction ids identical to
    // a compacted function's placement order, so `parse(print(f)) == f` for
    // everything the transform pipeline emits — the invariant the driver's
    // on-disk artifact cache relies on for bit-identical warm recompiles.
    let mut inst_order: Vec<Option<String>> = Vec::new();
    let mut depth = 1usize;
    while let Some((ln, l)) = p.next() {
        if l == "}" {
            depth -= 1;
            if depth == 0 {
                break;
            }
            continue;
        }
        if l.ends_with(':') || (l.contains("):") && l.starts_with("bb")) {
            // block header: `bb0:` or `bb1(bb1p0: i64, ...):`
            let l = l.trim_end_matches(':');
            if let Some(open) = l.find('(') {
                let name = l[..open].to_string();
                let inner = l[open + 1..].trim_end_matches(')');
                let mut tys = Vec::new();
                for part in split_top_level(inner) {
                    let ty_s = part
                        .split(':')
                        .nth(1)
                        .ok_or_else(|| perr(ln, format!("malformed block param `{part}`")))?
                        .trim();
                    tys.push(parse_type(ln, ty_s)?);
                }
                block_order.push((name, tys));
            } else {
                block_order.push((l.to_string(), vec![]));
            }
        } else if let Some(eq) = l.find('=') {
            if l.contains(": ") && l.starts_with('v') {
                let name = l[..l.find(':').unwrap()].trim().to_string();
                let _ = eq;
                inst_order.push(Some(name));
            }
        } else if !(l.starts_with("jump ")
            || l.starts_with("br ")
            || l == "ret"
            || l.starts_with("ret "))
        {
            inst_order.push(None);
        }
    }
    if depth != 0 {
        return Err(perr(hln, "unterminated function body"));
    }
    let end_pos = p.pos;

    // Allocate blocks: first block header reuses the entry block.
    for (i, (bname, tys)) in block_order.iter().enumerate() {
        let bb = if i == 0 { func.entry } else { func.add_block() };
        for ty in tys {
            func.add_block_param(bb, *ty);
        }
        env.blocks.insert(bname.clone(), bb);
    }
    // Allocate instruction slots in appearance order; void-instruction ids
    // queue up for the second pass to consume in the same order.
    let mut void_ids: std::collections::VecDeque<InstId> = std::collections::VecDeque::new();
    for iname in &inst_order {
        // Placeholder kind/type, patched in the second pass.
        let id = func.create_inst(InstKind::Prefetch { addr: Value::ConstI64(0) }, Type::Void);
        match iname {
            Some(name) => {
                env.insts.insert(name.clone(), id);
            }
            None => void_ids.push_back(id),
        }
    }

    // Second pass: fill instructions and terminators.
    p.pos = body_start;
    let mut cur: Option<BlockId> = None;
    while p.pos < end_pos {
        let (ln, l) = p.next().expect("bounded by end_pos");
        if l == "}" {
            continue;
        }
        if l.ends_with(':') && (l.starts_with("bb")) {
            let name = l.trim_end_matches(':');
            let name = name.split('(').next().unwrap();
            cur = Some(env.blocks[name]);
            continue;
        }
        let bb = cur.ok_or_else(|| perr(ln, "statement before first block header"))?;
        if let Some(rest) = l.strip_prefix("jump ") {
            let dest = p.parse_block_call(&env, ln, rest)?;
            func.set_terminator(bb, Terminator::Jump(dest));
        } else if let Some(rest) = l.strip_prefix("br ") {
            let parts = split_top_level(rest);
            if parts.len() != 3 {
                return Err(perr(ln, "br expects cond and two targets"));
            }
            let cond = p.parse_value(&env, ln, parts[0])?;
            let then_dest = p.parse_block_call(&env, ln, parts[1])?;
            let else_dest = p.parse_block_call(&env, ln, parts[2])?;
            func.set_terminator(bb, Terminator::Branch { cond, then_dest, else_dest });
        } else if l == "ret" {
            func.set_terminator(bb, Terminator::Ret(None));
        } else if let Some(rest) = l.strip_prefix("ret ") {
            let v = p.parse_value(&env, ln, rest)?;
            func.set_terminator(bb, Terminator::Ret(Some(v)));
        } else if let Some(eq) = l.find(" = ") {
            // `vN: ty = op ...`
            let lhs = &l[..eq];
            let colon = lhs.find(':').ok_or_else(|| perr(ln, "missing result type"))?;
            let vname = lhs[..colon].trim();
            let ty = parse_type(ln, lhs[colon + 1..].trim())?;
            let id = *env.insts.get(vname).ok_or_else(|| perr(ln, "unknown result name"))?;
            let kind = parse_inst_kind(p, &env, ln, &l[eq + 3..])?;
            *func.inst_mut(id) = crate::function::InstData { kind, ty };
            func.append_inst(bb, id);
        } else {
            // void instruction: store / prefetch / call
            let kind = parse_inst_kind(p, &env, ln, l)?;
            let id = void_ids
                .pop_front()
                .ok_or_else(|| perr(ln, "internal: unallocated void instruction"))?;
            *func.inst_mut(id) = crate::function::InstData { kind, ty: Type::Void };
            func.append_inst(bb, id);
        }
    }
    Ok(func)
}

fn parse_inst_kind(
    p: &Parser<'_>,
    env: &FuncEnv,
    ln: usize,
    text: &str,
) -> Result<InstKind, ParseError> {
    let text = text.trim();
    let (op, rest) = match text.find(' ') {
        Some(i) => (&text[..i], text[i + 1..].trim()),
        None => (text, ""),
    };
    if let Some(b) = binop_from_mnemonic(op) {
        let parts = split_top_level(rest);
        if parts.len() != 2 {
            return Err(perr(ln, format!("`{op}` expects two operands")));
        }
        return Ok(InstKind::Binary {
            op: b,
            lhs: p.parse_value(env, ln, parts[0])?,
            rhs: p.parse_value(env, ln, parts[1])?,
        });
    }
    if let Some(u) = unop_from_mnemonic(op) {
        return Ok(InstKind::Unary { op: u, operand: p.parse_value(env, ln, rest)? });
    }
    match op {
        "icmp" => {
            let (pred, rest2) =
                rest.split_once(' ').ok_or_else(|| perr(ln, "icmp expects predicate"))?;
            let parts = split_top_level(rest2);
            if parts.len() != 2 {
                return Err(perr(ln, "icmp expects two operands"));
            }
            Ok(InstKind::Cmp {
                op: cmpop_from_mnemonic(ln, pred)?,
                lhs: p.parse_value(env, ln, parts[0])?,
                rhs: p.parse_value(env, ln, parts[1])?,
            })
        }
        "select" => {
            let parts = split_top_level(rest);
            if parts.len() != 3 {
                return Err(perr(ln, "select expects three operands"));
            }
            Ok(InstKind::Select {
                cond: p.parse_value(env, ln, parts[0])?,
                then_value: p.parse_value(env, ln, parts[1])?,
                else_value: p.parse_value(env, ln, parts[2])?,
            })
        }
        "ptradd" => {
            let parts = split_top_level(rest);
            if parts.len() != 2 {
                return Err(perr(ln, "ptradd expects two operands"));
            }
            Ok(InstKind::PtrAdd {
                base: p.parse_value(env, ln, parts[0])?,
                offset: p.parse_value(env, ln, parts[1])?,
            })
        }
        "load" => Ok(InstKind::Load { addr: p.parse_value(env, ln, rest)? }),
        "store" => {
            let parts = split_top_level(rest);
            if parts.len() != 2 {
                return Err(perr(ln, "store expects two operands"));
            }
            Ok(InstKind::Store {
                addr: p.parse_value(env, ln, parts[0])?,
                value: p.parse_value(env, ln, parts[1])?,
            })
        }
        "prefetch" => Ok(InstKind::Prefetch { addr: p.parse_value(env, ln, rest)? }),
        "call" => {
            let open = rest.find('(').ok_or_else(|| perr(ln, "call expects `(`"))?;
            let name = rest[..open].trim();
            let inner =
                rest[open + 1..].strip_suffix(')').ok_or_else(|| perr(ln, "call expects `)`"))?;
            let callee = *p
                .func_names
                .get(name)
                .ok_or_else(|| perr(ln, format!("unknown callee `{name}`")))?;
            let mut args = Vec::new();
            for a in split_top_level(inner) {
                args.push(p.parse_value(env, ln, a)?);
            }
            Ok(InstKind::Call { callee, args })
        }
        other => Err(perr(ln, format!("unknown instruction `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::print::print_module;

    fn round_trip(m: &Module) {
        let text = print_module(m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        let text2 = print_module(&parsed);
        assert_eq!(text, text2, "round trip changed the module");
        crate::verify::verify_module(&parsed).unwrap();
    }

    #[test]
    fn round_trip_loop_function() {
        let mut m = Module::new();
        let g = m.add_global("a", Type::F64, 128);
        let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::Void);
        b.set_task();
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::f64(0.0)],
            |b, i, c| {
                let addr = b.elem_addr(Value::Global(g), i, Type::F64);
                let x = b.load(Type::F64, addr);
                vec![b.fadd(c[0], x)]
            },
        );
        let dst = b.ptr_add(Value::Global(g), 0i64);
        b.store(dst, out[0]);
        b.ret(None);
        m.add_function(b.finish());
        round_trip(&m);
    }

    #[test]
    fn round_trip_calls_and_branches() {
        let mut m = Module::new();
        let mut cb = FunctionBuilder::new("helper", vec![Type::I64], Type::I64);
        let d = cb.imul(Value::Arg(0), 2i64);
        cb.ret(Some(d));
        let callee = m.add_function(cb.finish());

        let mut b = FunctionBuilder::new("main_like", vec![Type::I64], Type::I64);
        let c = b.cmp(CmpOp::Gt, Value::Arg(0), 10i64);
        let merged = b.if_then_else(
            c,
            vec![Type::I64],
            |b| vec![b.call(callee, vec![Value::Arg(0)], Type::I64).unwrap()],
            |_| vec![Value::i64(0)],
        );
        b.ret(Some(merged[0]));
        m.add_function(b.finish());
        round_trip(&m);
    }

    #[test]
    fn parses_handwritten_snippet() {
        let text = "
global g0 buf : 4 x i64

task fn scan(arg0: i64) {
bb0:
  jump bb1(0)
bb1(bb1p0: i64):
  v0: bool = icmp lt bb1p0, arg0
  br v0, bb2, bb3
bb2:
  v1: i64 = imul bb1p0, 8
  v2: ptr = ptradd @g0, v1
  prefetch v2
  v3: i64 = iadd bb1p0, 1
  jump bb1(v3)
bb3:
  ret
}
";
        let m = parse_module(text).unwrap();
        crate::verify::verify_module(&m).unwrap();
        let f = m.func(m.func_by_name("scan").unwrap());
        assert!(f.is_task);
        assert_eq!(f.num_blocks(), 4);
    }

    #[test]
    fn reports_errors_with_line() {
        let text = "fn broken() {\nbb0:\n  v0: i64 = frobnicate 1, 2\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn parses_float_and_bool_literals() {
        let text = "
fn f() -> f64 {
bb0:
  v0: f64 = fadd 1.5, 2.25
  v1: f64 = select true, v0, 0.0
  ret v1
}
";
        let m = parse_module(text).unwrap();
        crate::verify::verify_module(&m).unwrap();
    }
}
