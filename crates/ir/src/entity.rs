//! Small typed-index arenas used throughout the IR.
//!
//! Every IR entity (function, block, instruction, global) is referred to by a
//! lightweight copyable id that indexes into a [`PrimaryMap`]. This mirrors
//! the `entity` pattern used by production compilers (e.g. Cranelift) and
//! keeps the IR free of reference cycles, which makes cloning and rewriting
//! tasks — the bread and butter of the DAE transformation — trivial.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

/// A key type usable with [`PrimaryMap`] and [`SecondaryMap`].
pub trait EntityId: Copy + Eq + Hash + fmt::Debug + 'static {
    /// Builds an id from a raw index.
    fn from_index(idx: usize) -> Self;
    /// Returns the raw index of this id.
    fn index(self) -> usize;
}

/// Declares a new entity id type.
///
/// ```
/// dae_ir::entity_id!(pub struct DemoId, "demo");
/// let id = <DemoId as dae_ir::entity::EntityId>::from_index(3);
/// assert_eq!(format!("{id}"), "demo3");
/// ```
#[macro_export]
macro_rules! entity_id {
    (pub struct $name:ident, $prefix:literal) => {
        /// A typed index referring to one IR entity.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $crate::entity::EntityId for $name {
            fn from_index(idx: usize) -> Self {
                debug_assert!(idx <= u32::MAX as usize);
                $name(idx as u32)
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                ::std::fmt::Debug::fmt(self, f)
            }
        }
    };
}

/// An append-only arena mapping ids of type `K` to values of type `V`.
///
/// Ids are dense: the `n`-th pushed element has index `n`.
#[derive(Clone, PartialEq, Eq)]
pub struct PrimaryMap<K: EntityId, V> {
    items: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V> PrimaryMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PrimaryMap { items: Vec::new(), _marker: PhantomData }
    }

    /// Appends `value`, returning its id.
    pub fn push(&mut self, value: V) -> K {
        let id = K::from_index(self.items.len());
        self.items.push(value);
        id
    }

    /// Number of entities allocated.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no entity has been allocated.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The id the next `push` will return.
    pub fn next_id(&self) -> K {
        K::from_index(self.items.len())
    }

    /// Iterates over `(id, &value)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.items.iter().enumerate().map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over all ids in allocation order.
    pub fn keys(&self) -> impl Iterator<Item = K> + 'static {
        (0..self.items.len()).map(K::from_index)
    }

    /// Iterates over values in allocation order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.items.iter()
    }

    /// Checks whether `key` refers to an allocated entity.
    pub fn contains(&self, key: K) -> bool {
        key.index() < self.items.len()
    }
}

impl<K: EntityId, V> Default for PrimaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityId, V> std::ops::Index<K> for PrimaryMap<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        &self.items[key.index()]
    }
}

impl<K: EntityId, V> std::ops::IndexMut<K> for PrimaryMap<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        &mut self.items[key.index()]
    }
}

impl<K: EntityId, V: fmt::Debug> fmt::Debug for PrimaryMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// A dense side-table associating a `V` with every entity of a [`PrimaryMap`].
///
/// Missing entries read back as `V::default()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecondaryMap<K: EntityId, V: Clone + Default> {
    items: Vec<V>,
    default: V,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V: Clone + Default> SecondaryMap<K, V> {
    /// Creates an empty side-table.
    pub fn new() -> Self {
        SecondaryMap { items: Vec::new(), default: V::default(), _marker: PhantomData }
    }

    /// Creates a side-table pre-sized for `len` entities.
    pub fn with_capacity(len: usize) -> Self {
        SecondaryMap { items: vec![V::default(); len], default: V::default(), _marker: PhantomData }
    }

    fn ensure(&mut self, key: K) {
        if key.index() >= self.items.len() {
            self.items.resize(key.index() + 1, V::default());
        }
    }
}

impl<K: EntityId, V: Clone + Default> Default for SecondaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityId, V: Clone + Default> std::ops::Index<K> for SecondaryMap<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        self.items.get(key.index()).unwrap_or(&self.default)
    }
}

impl<K: EntityId, V: Clone + Default> std::ops::IndexMut<K> for SecondaryMap<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        self.ensure(key);
        &mut self.items[key.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    entity_id!(pub struct TestId, "t");

    #[test]
    fn push_and_index() {
        let mut m: PrimaryMap<TestId, &str> = PrimaryMap::new();
        let a = m.push("a");
        let b = m.push("b");
        assert_eq!(m[a], "a");
        assert_eq!(m[b], "b");
        assert_eq!(m.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn keys_are_dense_and_ordered() {
        let mut m: PrimaryMap<TestId, i32> = PrimaryMap::new();
        for i in 0..5 {
            m.push(i);
        }
        let keys: Vec<usize> = m.keys().map(|k| k.index()).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn display_uses_prefix() {
        let id = TestId::from_index(7);
        assert_eq!(format!("{id}"), "t7");
        assert_eq!(format!("{id:?}"), "t7");
    }

    #[test]
    fn secondary_map_defaults() {
        let mut m: PrimaryMap<TestId, i32> = PrimaryMap::new();
        let a = m.push(1);
        let b = m.push(2);
        let mut side: SecondaryMap<TestId, bool> = SecondaryMap::new();
        assert!(!side[a]);
        side[b] = true;
        assert!(side[b]);
        assert!(!side[a]);
    }

    #[test]
    fn next_id_matches_push() {
        let mut m: PrimaryMap<TestId, i32> = PrimaryMap::new();
        let predicted = m.next_id();
        let actual = m.push(42);
        assert_eq!(predicted, actual);
    }
}
