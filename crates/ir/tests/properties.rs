//! Property-based tests: randomly generated modules survive
//! print → parse → print round trips and always verify.

use dae_ir::{
    parse::parse_module, print_module, verify_module, BinOp, CmpOp, FunctionBuilder, Module, Type,
    Value,
};
use proptest::prelude::*;

/// A recipe for one arithmetic instruction over previously defined values.
#[derive(Clone, Debug)]
enum Step {
    IBin(u8, usize, usize),
    FBin(u8, usize, usize),
    Cmp(u8, usize, usize),
    LoadF(usize),
    StoreF(usize, usize),
    Prefetch(usize),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..5, 0usize..64, 0usize..64).prop_map(|(o, a, b)| Step::IBin(o, a, b)),
        (0u8..4, 0usize..64, 0usize..64).prop_map(|(o, a, b)| Step::FBin(o, a, b)),
        (0u8..6, 0usize..64, 0usize..64).prop_map(|(o, a, b)| Step::Cmp(o, a, b)),
        (0usize..64).prop_map(Step::LoadF),
        (0usize..64, 0usize..64).prop_map(|(a, v)| Step::StoreF(a, v)),
        (0usize..64).prop_map(Step::Prefetch),
    ]
}

/// Builds a module with a single function executing the steps inside a
/// counted loop, keeping separate pools of int and float values.
fn build_module(steps: &[Step], with_loop: bool) -> Module {
    let mut m = Module::new();
    let g = m.add_global("data", Type::F64, 256);
    let mut b = FunctionBuilder::new("generated", vec![Type::I64, Type::F64], Type::Void);
    b.set_task();

    let emit_body = |b: &mut FunctionBuilder, iv: Value| {
        let mut ints: Vec<Value> = vec![Value::i64(1), Value::i64(7), iv];
        let mut floats: Vec<Value> = vec![Value::f64(1.5), Value::Arg(1)];
        let ibin = [BinOp::IAdd, BinOp::ISub, BinOp::IMul, BinOp::And, BinOp::Xor];
        let fbin = [BinOp::FAdd, BinOp::FSub, BinOp::FMul, BinOp::FMax];
        let cmps = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        for s in steps {
            match s {
                Step::IBin(o, a, c) => {
                    let x = ints[a % ints.len()];
                    let y = ints[c % ints.len()];
                    let v = b.binary(ibin[*o as usize % ibin.len()], x, y);
                    ints.push(v);
                }
                Step::FBin(o, a, c) => {
                    let x = floats[a % floats.len()];
                    let y = floats[c % floats.len()];
                    let v = b.binary(fbin[*o as usize % fbin.len()], x, y);
                    floats.push(v);
                }
                Step::Cmp(o, a, c) => {
                    let x = ints[a % ints.len()];
                    let y = ints[c % ints.len()];
                    let cond = b.cmp(cmps[*o as usize % cmps.len()], x, y);
                    let v = b.select(cond, Value::i64(1), Value::i64(0));
                    ints.push(v);
                }
                Step::LoadF(a) => {
                    let idx = ints[a % ints.len()];
                    let wrapped = b.and(idx, 255i64);
                    let addr = b.elem_addr(Value::Global(g), wrapped, Type::F64);
                    let v = b.load(Type::F64, addr);
                    floats.push(v);
                }
                Step::StoreF(a, v) => {
                    let idx = ints[a % ints.len()];
                    let wrapped = b.and(idx, 255i64);
                    let addr = b.elem_addr(Value::Global(g), wrapped, Type::F64);
                    let val = floats[v % floats.len()];
                    b.store(addr, val);
                }
                Step::Prefetch(a) => {
                    let idx = ints[a % ints.len()];
                    let wrapped = b.and(idx, 255i64);
                    let addr = b.elem_addr(Value::Global(g), wrapped, Type::F64);
                    b.prefetch(addr);
                }
            }
        }
    };

    if with_loop {
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, iv| emit_body(b, iv));
    } else {
        emit_body(&mut b, Value::i64(3));
    }
    b.ret(None);
    m.add_function(b.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder output always satisfies the structural verifier.
    #[test]
    fn builder_output_verifies(steps in proptest::collection::vec(step(), 0..30), looped: bool) {
        let m = build_module(&steps, looped);
        verify_module(&m).unwrap();
    }

    /// Parsing normalises instruction numbering (void instructions have ids
    /// but print namelessly); after one normalisation, print → parse →
    /// print is a fixpoint and the module always verifies.
    #[test]
    fn print_parse_round_trip(steps in proptest::collection::vec(step(), 0..30), looped: bool) {
        let m = build_module(&steps, looped);
        let text1 = print_module(&m);
        let parsed1 = parse_module(&text1).expect("parses");
        verify_module(&parsed1).unwrap();
        let text2 = print_module(&parsed1);
        let parsed2 = parse_module(&text2).expect("re-parses");
        verify_module(&parsed2).unwrap();
        let text3 = print_module(&parsed2);
        prop_assert_eq!(text2, text3, "normalised form must be a fixpoint");
    }
}
