//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. convex-hull profitability check on/off (`NconvUn <= NOrig`, §5.1),
//! 2. simplified-CFG conditional elimination on/off (§5.2.2),
//! 3. per-cache-line prefetch dedup on/off (§5.2.3 extension),
//! 4. store-address prefetching on/off (§5.2.1 finding),
//! 5. DVFS transition-latency sweep (§6.1 projection).
//!
//! Run: `cargo bench -p dae-bench --bench ablations`

use dae_bench::{print_table, run_variant, write_csv, Row};
use dae_core::{generate_access, CompilerOptions, Strategy};
use dae_power::DvfsConfig;
use dae_runtime::{run_workload, FreqPolicy, RuntimeConfig};
use dae_workloads::{lbm, libq, lu, Variant};

/// 1. Hull profitability check: with the check, a gapped two-region access
///    falls back to the skeleton; without it, the generated nest scans the gap.
fn hull_check() {
    use dae_ir::{FunctionBuilder, Module, Type, Value};
    let mut m = Module::new();
    let a = m.add_global("A", Type::F64, 4096);
    let mut b = FunctionBuilder::new("gapped", vec![Type::I64], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
        let p1 = b.elem_addr(Value::Global(a), i, Type::F64);
        let v1 = b.load(Type::F64, p1);
        let far = b.iadd(i, 2000i64);
        let p2 = b.elem_addr(Value::Global(a), far, Type::F64);
        let v2 = b.load(Type::F64, p2);
        let s = b.fadd(v1, v2);
        b.store(p1, s);
    });
    b.ret(None);
    let task = m.add_function(b.finish());

    let mut rows = Vec::new();
    for (label, skip) in [("check on (paper)", false), ("check off", true)] {
        let opts =
            CompilerOptions { param_hints: vec![64], skip_hull_check: skip, ..Default::default() };
        let g = generate_access(&m, task, &opts).expect("generated");
        let (strategy, n_orig, n_conv) = match &g.strategy {
            Strategy::Polyhedral(s) => (1.0, s.n_orig as f64, s.n_conv_un as f64),
            Strategy::Skeleton => (0.0, 128.0, 128.0),
        };
        rows.push(Row { label: label.into(), values: vec![strategy, n_orig, n_conv] });
    }
    let cols = ["polyhedral?", "NOrig", "NconvUn"];
    print_table("Ablation 1 — convex-hull profitability check (gapped access)", &cols, &rows, 0);
    write_csv("ablation_hull_check", &cols, &rows);
}

/// 2. CFG simplification on LBM (obstacle conditional).
fn cfg_simplify() {
    let mut rows = Vec::new();
    for (label, on) in [("simplify on (paper)", true), ("simplify off", false)] {
        let mut w = lbm::build_sized(256, 128, 4, 1);
        w.base_options.cfg_simplify = on;
        w.compile_auto();
        let r =
            run_variant(&w, Variant::AutoDae, FreqPolicy::DaeMinMax, DvfsConfig::latency_500ns());
        rows.push(Row {
            label: label.into(),
            values: vec![
                r.breakdown.access_s * 1e3,
                r.access_trace.instrs as f64,
                r.time_s * 1e3,
                r.edp() * 1e6,
            ],
        });
    }
    let cols = ["access (ms)", "access instrs", "time (ms)", "EDP (uJ*s)"];
    print_table("Ablation 2 — §5.2.2 simplified CFG (LBM)", &cols, &rows, 3);
    write_csv("ablation_cfg_simplify", &cols, &rows);
}

/// 3. Per-cache-line dedup on the LU polyhedral nests.
fn line_dedup() {
    let mut rows = Vec::new();
    for (label, on) in [("per-element (paper auto)", false), ("per-line (§5.2.3 ext)", true)] {
        let mut w = lu::build_sized(96, 16);
        w.base_options.line_dedup = on;
        w.compile_auto();
        let r =
            run_variant(&w, Variant::AutoDae, FreqPolicy::DaeOptimal, DvfsConfig::latency_500ns());
        rows.push(Row {
            label: label.into(),
            values: vec![
                r.access_trace.prefetches as f64,
                r.breakdown.access_s * 1e3,
                r.edp() * 1e6,
            ],
        });
    }
    let cols = ["prefetches", "access (ms)", "EDP (uJ*s)"];
    print_table("Ablation 3 — per-cache-line prefetch dedup (LU)", &cols, &rows, 3);
    write_csv("ablation_line_dedup", &cols, &rows);
}

/// 4. Prefetching store addresses too ("does not improve performance").
fn store_prefetch() {
    let mut rows = Vec::new();
    for (label, on) in [("reads only (paper)", false), ("reads + writes", true)] {
        let mut w = lbm::build_sized(256, 128, 4, 1);
        w.base_options.prefetch_writes = on;
        w.compile_auto();
        let r =
            run_variant(&w, Variant::AutoDae, FreqPolicy::DaeOptimal, DvfsConfig::latency_500ns());
        rows.push(Row {
            label: label.into(),
            values: vec![r.access_trace.prefetches as f64, r.time_s * 1e3, r.edp() * 1e6],
        });
    }
    let cols = ["prefetches", "time (ms)", "EDP (uJ*s)"];
    print_table("Ablation 4 — prefetching write addresses (LBM)", &cols, &rows, 3);
    write_csv("ablation_store_prefetch", &cols, &rows);
}

/// 5. DVFS transition-latency sweep on LibQ (the §6.1 projection axis).
fn dvfs_latency() {
    let mut w = libq::build_sized(65536, 8192);
    w.compile_auto();
    let base = RuntimeConfig::paper_default();
    let cae = run_workload(&w.module, &w.tasks(Variant::Cae), &base).unwrap();
    let mut rows = Vec::new();
    for (label, s) in [
        ("0 ns (ideal)", 0.0),
        ("100 ns", 100e-9),
        ("500 ns (Haswell)", 500e-9),
        ("2 us", 2e-6),
        ("10 us (legacy)", 10e-6),
    ] {
        let cfg = base
            .clone()
            .with_policy(FreqPolicy::DaeOptimal)
            .with_dvfs(DvfsConfig { transition_s: s });
        let r = run_workload(&w.module, &w.tasks(Variant::AutoDae), &cfg).unwrap();
        rows.push(Row {
            label: label.into(),
            values: vec![r.time_s / cae.time_s, r.edp() / cae.edp()],
        });
    }
    let cols = ["time vs CAE", "EDP vs CAE"];
    print_table("Ablation 5 — DVFS transition latency (LibQ, Auto DAE optimal-f)", &cols, &rows, 3);
    write_csv("ablation_dvfs_latency", &cols, &rows);
}

fn main() {
    println!("Design-choice ablations (DESIGN.md §5)");
    hull_check();
    cfg_simplify();
    line_dedup();
    store_prefetch();
    dvfs_latency();
}
