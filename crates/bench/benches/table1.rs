//! Regenerates **Table 1** — application characteristics: affine loops /
//! total target loops, number of task instances, TA% (access-phase share of
//! busy time) and TA (average access-phase duration, µs).
//!
//! Run: `cargo bench -p dae-bench --bench table1`

use dae_bench::{print_table, write_csv, Row};
use dae_power::DvfsConfig;
use dae_runtime::FreqPolicy;
use dae_workloads::{all_benchmarks, Variant};

fn main() {
    let mut rows = Vec::new();
    println!("Table 1: application characteristics (Auto DAE, access @ fmin)");
    for mut w in all_benchmarks() {
        w.compile_auto();
        let map = w.auto_map().expect("compiled");
        let affine: usize = map.info_of.values().map(|i| i.loops_affine).sum();
        let total: usize = map.info_of.values().map(|i| i.loops_total).sum();
        let r = dae_bench::run_variant(
            &w,
            Variant::AutoDae,
            FreqPolicy::DaeMinMax,
            DvfsConfig::latency_500ns(),
        );
        rows.push(Row {
            label: w.name.to_string(),
            values: vec![
                affine as f64,
                total as f64,
                w.num_tasks() as f64,
                r.ta_percent(),
                r.ta_us(),
            ],
        });
    }
    let columns = ["affine loops", "total loops", "# tasks", "TA %", "TA (usec)"];
    print_table("Table 1 — Application characteristics", &columns, &rows, 2);
    write_csv("table1", &columns, &rows);

    println!(
        "\npaper reference: LU 3/3 1.83% 6.82us | Chol 3/3 1.80% 6.05us | FFT 0/6 19.24% 30.74us"
    );
    println!(
        "                 LBM 0/1 47.95% 7.90us | LibQ 0/6 47.01% 2.64us | Cigar 0/1 49.27% 5.11us | CG 0/2 42.84% 2.89us"
    );
}
