//! Evaluates the **online DVFS governors** against the paper's static
//! policies: per benchmark, the EDP of `MissRatioHeuristic` and `BanditEdp`
//! (cold and after a warm-up of repeated runs, the governor state carried
//! across runs) normalized to the exhaustive `DaeOptimal` oracle, plus the
//! bandit's run-by-run **regret trajectory** vs the oracle.
//!
//! Writes `target/repro/BENCH_governor_<mode>.json` recording, per
//! benchmark, whether the warmed-up bandit lands within 10% of the oracle
//! and whether the heuristic beats `DaeMinMax` — the ISSUE 3 acceptance
//! facts — alongside the full run reports (including each governor's
//! learned per-class frequency table).
//!
//! Run: `cargo bench -p dae-bench --bench governor`
//! Smoke (CI): `DAE_BENCH_SMOKE=1 cargo bench -p dae-bench --bench governor`
//! (or pass `--smoke`): one small benchmark, short trajectory.

use dae_bench::{geomean, out_dir, print_table, run_variant, write_summary_json, Row};
use dae_power::DvfsConfig;
use dae_runtime::{run_workload_governed, FreqPolicy, GovernorKind, RunReport, RuntimeConfig};
use dae_trace::json::JsonValue;
use dae_trace::NullSink;
use dae_workloads::{all_benchmarks, all_benchmarks_small, Variant, Workload};

const SEED: u64 = 0xace;

/// Runs `w` `repeats` times under one governor instance, returning every
/// run's report — the governor warms up across the trajectory exactly as a
/// long-running runtime would.
fn trajectory(w: &Workload, kind: GovernorKind, repeats: usize) -> Vec<RunReport> {
    let cfg = RuntimeConfig::paper_default().with_dvfs(DvfsConfig::latency_500ns());
    let mut gov = kind.build(&cfg.table);
    (0..repeats)
        .map(|_| {
            run_workload_governed(
                &w.module,
                &w.tasks(Variant::ManualDae),
                &cfg,
                gov.as_mut(),
                &mut NullSink,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        })
        .collect()
}

fn governor_json(runs: &[RunReport], oracle: f64, minmax: f64) -> JsonValue {
    let warm = runs.last().expect("at least one run");
    let edp_by_run: Vec<JsonValue> = runs.iter().map(|r| r.edp().into()).collect();
    let regret_by_run: Vec<JsonValue> =
        runs.iter().map(|r| (r.edp() / oracle - 1.0).into()).collect();
    JsonValue::obj([
        ("cold_edp", runs[0].edp().into()),
        ("warm_edp", warm.edp().into()),
        ("vs_oracle", (warm.edp() / oracle - 1.0).into()),
        ("vs_minmax", (warm.edp() / minmax - 1.0).into()),
        ("within_10pct_of_oracle", (warm.edp() <= oracle * 1.10).into()),
        ("beats_minmax", (warm.edp() < minmax).into()),
        ("edp_by_run", JsonValue::Arr(edp_by_run)),
        ("regret_vs_oracle_by_run", JsonValue::Arr(regret_by_run)),
    ])
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--smoke") || std::env::var_os("DAE_BENCH_SMOKE").is_some();
    let (mode, repeats, benchmarks) = if smoke {
        ("smoke", 41, vec![all_benchmarks_small().remove(0)])
    } else {
        ("full", 24, all_benchmarks())
    };
    println!(
        "Governor evaluation [{mode}]: {} benchmark(s), {repeats} runs each",
        benchmarks.len()
    );

    let dvfs = DvfsConfig::latency_500ns();
    let columns = ["MinMax", "Heur cold", "Heur warm", "Bandit cold", "Bandit warm"];
    let mut edp_rows = Vec::new();
    let mut reports = Vec::new();
    let mut bench_json = Vec::new();
    let mut all_within = true;

    for w in &benchmarks {
        let oracle = run_variant(w, Variant::ManualDae, FreqPolicy::DaeOptimal, dvfs);
        let minmax = run_variant(w, Variant::ManualDae, FreqPolicy::DaeMinMax, dvfs);
        let heur = trajectory(w, GovernorKind::Heuristic, repeats);
        let bandit = trajectory(w, GovernorKind::Bandit { seed: SEED }, repeats);

        let (o, m) = (oracle.edp(), minmax.edp());
        edp_rows.push(Row {
            label: w.name.to_string(),
            values: vec![
                m / o,
                heur[0].edp() / o,
                heur.last().unwrap().edp() / o,
                bandit[0].edp() / o,
                bandit.last().unwrap().edp() / o,
            ],
        });

        all_within = all_within && bandit.last().unwrap().edp() <= o * 1.10;
        bench_json.push(JsonValue::obj([
            ("name", w.name.into()),
            ("oracle_edp", o.into()),
            ("minmax_edp", m.into()),
            ("heuristic", governor_json(&heur, o, m)),
            ("bandit", governor_json(&bandit, o, m)),
        ]));

        reports.push((format!("{}/oracle", w.name), oracle));
        reports.push((format!("{}/minmax", w.name), minmax));
        reports.push((format!("{}/heuristic warm", w.name), heur.into_iter().last().unwrap()));
        reports.push((format!("{}/bandit warm", w.name), bandit.into_iter().last().unwrap()));
    }

    let n = edp_rows[0].values.len();
    let gm: Vec<f64> = (0..n).map(|c| geomean(edp_rows.iter().map(|r| r.values[c]))).collect();
    edp_rows.push(Row { label: "G.Mean".to_string(), values: gm.clone() });

    print_table(
        &format!("Governor EDP, normalized to the DaeOptimal oracle [{mode}]"),
        &columns,
        &edp_rows,
        3,
    );
    println!(
        "\nwarmed-up bandit within 10% of oracle on every benchmark: {}",
        if all_within { "yes" } else { "NO" }
    );
    println!(
        "geomean: bandit warm {:+.1}% vs oracle, heuristic warm {:+.1}% vs oracle",
        (gm[4] - 1.0) * 100.0,
        (gm[2] - 1.0) * 100.0
    );

    let v = JsonValue::obj([
        ("schema", "dae-governor-bench/1".into()),
        ("mode", mode.into()),
        ("repeats", repeats.into()),
        ("seed", SEED.into()),
        ("bandit_within_10pct_of_oracle_everywhere", all_within.into()),
        ("benchmarks", JsonValue::Arr(bench_json)),
    ]);
    let path = out_dir().join(format!("BENCH_governor_{mode}.json"));
    std::fs::write(&path, v.to_json_string()).expect("write governor bench json");
    println!("   -> {}", path.display());

    write_summary_json(&format!("governor_{mode}_reports"), &reports);
}
