//! A/B throughput benchmark of the two simulator execution engines: the
//! reference tree-walking interpreter vs the pre-lowered bytecode VM
//! (`dae_sim::vm`), on the full benchmark corpus.
//!
//! Per benchmark, every task instance of the CAE variant is executed on a
//! fresh machine + cache hierarchy under each engine and the wall time of
//! the whole task list is measured (best of `--trials`, bytecode lowering
//! included — it is part of the engine's cost). The metric is dynamic
//! steps per second, where steps = `instrs + addr_ops` — identical across
//! engines by the equivalence contract, so the speedup is a pure wall-time
//! ratio on equal work.
//!
//! Writes `target/repro/BENCH_interp_<mode>.json` with per-benchmark
//! steps/sec for both engines, the geomean speedup and the `meets_3x`
//! acceptance fact.
//!
//! Run: `cargo bench -p dae-bench --bench interp`
//! Smoke (CI): `DAE_BENCH_SMOKE=1 cargo bench -p dae-bench --bench interp`
//! (or pass `--smoke`): small corpus, one trial.

use dae_bench::{geomean, out_dir, print_table, Row};
use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
use dae_sim::{CachePort, EngineKind, Machine, PhaseTrace};
use dae_trace::json::JsonValue;
use dae_workloads::{all_benchmarks, all_benchmarks_small, Variant, Workload};
use std::time::Instant;

/// One timed pass over the workload's whole task list: fresh machine and
/// caches (cold start, lowering on first use), returns (steps, seconds).
fn run_once(w: &Workload, engine: EngineKind) -> (u64, f64) {
    let hc = HierarchyConfig::default();
    let mut llc = SharedLlc::new(hc.llc);
    let mut core = CoreCaches::new(&hc);
    let mut machine = Machine::new(&w.module);
    machine.config.engine = engine;
    let tasks = w.tasks(Variant::Cae);
    let start = Instant::now();
    let mut steps = 0u64;
    for t in &tasks {
        let mut trace = PhaseTrace::default();
        machine
            .run(t.func, &t.args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut trace)
            .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, engine.label()));
        steps += trace.instrs + trace.addr_ops;
    }
    (steps, start.elapsed().as_secs_f64())
}

/// Best-of-`trials` steps/sec (max over trials — the least-noise estimate).
fn steps_per_sec(w: &Workload, engine: EngineKind, trials: usize) -> (u64, f64) {
    let mut best = 0.0f64;
    let mut steps = 0;
    for _ in 0..trials {
        let (s, secs) = run_once(w, engine);
        steps = s;
        best = best.max(s as f64 / secs);
    }
    (steps, best)
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--smoke") || std::env::var_os("DAE_BENCH_SMOKE").is_some();
    let (mode, trials, benchmarks) =
        if smoke { ("smoke", 1, all_benchmarks_small()) } else { ("full", 3, all_benchmarks()) };
    println!(
        "Interpreter engine A/B [{mode}]: {} benchmark(s), best of {trials} trial(s)",
        benchmarks.len()
    );

    let mut rows = Vec::new();
    let mut bench_json = Vec::new();
    let mut speedups = Vec::new();
    for w in &benchmarks {
        let (steps_t, tree) = steps_per_sec(w, EngineKind::Tree, trials);
        let (steps_b, vm) = steps_per_sec(w, EngineKind::Bytecode, trials);
        assert_eq!(steps_t, steps_b, "{}: engines disagree on step count", w.name);
        let speedup = vm / tree;
        speedups.push(speedup);
        rows.push(Row {
            label: w.name.to_string(),
            values: vec![steps_t as f64, tree / 1e6, vm / 1e6, speedup],
        });
        bench_json.push(JsonValue::obj([
            ("name", w.name.into()),
            ("steps", (steps_t as f64).into()),
            ("tree_steps_per_s", tree.into()),
            ("bytecode_steps_per_s", vm.into()),
            ("speedup", speedup.into()),
        ]));
    }

    let gm = geomean(speedups.iter().copied());
    rows.push(Row { label: "G.Mean".to_string(), values: vec![f64::NAN, f64::NAN, f64::NAN, gm] });
    print_table(
        &format!("Interpreter throughput, CAE task lists [{mode}]"),
        &["steps", "tree Msteps/s", "bytecode Msteps/s", "speedup"],
        &rows,
        2,
    );
    let meets = gm >= 3.0;
    println!("\ngeomean bytecode speedup: {gm:.2}x (>= 3x: {})", if meets { "yes" } else { "NO" });

    let v = JsonValue::obj([
        ("schema", "dae-interp-bench/1".into()),
        ("mode", mode.into()),
        ("trials", trials.into()),
        ("benchmarks", JsonValue::Arr(bench_json)),
        ("geomean_speedup", gm.into()),
        ("meets_3x", meets.into()),
    ]);
    let path = out_dir().join(format!("BENCH_interp_{mode}.json"));
    std::fs::write(&path, v.to_json_string()).expect("write interp bench json");
    println!("   -> {}", path.display());
}
