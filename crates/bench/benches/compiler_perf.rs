//! Criterion benchmarks of the compiler itself: analysis and access-phase
//! generation throughput on representative tasks.
//!
//! Run: `cargo bench -p dae-bench --bench compiler_perf`

use criterion::{criterion_group, criterion_main, Criterion};
use dae_core::{analyze_task, generate_access, CompilerOptions};
use dae_workloads::{cg, lbm, lu};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let w = lu::build_sized(64, 16);
    let task = w.module.func_by_name("lu_inner").unwrap();
    let inlined = dae_analysis::transform::inline_all(&w.module, task).unwrap();
    c.bench_function("analyze_task/lu_inner", |b| {
        b.iter(|| black_box(analyze_task(&w.module, black_box(&inlined))))
    });
}

fn bench_affine_generation(c: &mut Criterion) {
    let w = lu::build_sized(64, 16);
    let task = w.module.func_by_name("lu_inner").unwrap();
    let opts = CompilerOptions { param_hints: vec![0, 16, 32], ..Default::default() };
    c.bench_function("generate_access/polyhedral/lu_inner", |b| {
        b.iter(|| black_box(generate_access(&w.module, black_box(task), &opts)).is_ok())
    });
}

fn bench_skeleton_generation(c: &mut Criterion) {
    let w = lbm::build_sized(64, 32, 8, 1);
    let task = w.module.func_by_name("lbm_sweep").unwrap();
    let opts = CompilerOptions::default();
    c.bench_function("generate_access/skeleton/lbm_sweep", |b| {
        b.iter(|| black_box(generate_access(&w.module, black_box(task), &opts)).is_ok())
    });
    let w2 = cg::build_sized(256, 8, 64, 1);
    let task2 = w2.module.func_by_name("cg_spmv").unwrap();
    c.bench_function("generate_access/skeleton/cg_spmv", |b| {
        b.iter(|| black_box(generate_access(&w2.module, black_box(task2), &opts)).is_ok())
    });
}

fn bench_polyhedral_substrate(c: &mut Criterion) {
    use dae_poly::{convex_hull, LinExpr, Polyhedron, Rat, Space};
    let s = Space::new(2, 0);
    let mut p = Polyhedron::universe(s);
    p.bound_dim(0, 0, 63);
    p.add_ge0(LinExpr::dim(s, 1).with_dim(0, -1).with_const(-1));
    p.add_ge0(LinExpr::dim(s, 1).scale(-1).with_const(63));
    c.bench_function("poly/count_triangle_64", |b| b.iter(|| black_box(&p).count_integer_points()));
    let pts: Vec<Vec<Rat>> =
        (0..64).map(|k| vec![Rat::from(k % 13), Rat::from((k * 7) % 17)]).collect();
    c.bench_function("poly/hull_64_points", |b| b.iter(|| convex_hull(2, black_box(&pts))));
}

fn bench_interpreter_throughput(c: &mut Criterion) {
    use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
    use dae_sim::{CachePort, Machine, PhaseTrace, Val};
    let w = lu::build_sized(64, 16);
    let inner = w.module.func_by_name("lu_inner").unwrap();
    let hc = HierarchyConfig::default();
    let mut group = c.benchmark_group("interpreter");
    // ~70k dynamic instructions per call (16³ inner iterations).
    group.throughput(criterion::Throughput::Elements(70_000));
    group.bench_function("lu_inner_16", |b| {
        let mut llc = SharedLlc::new(hc.llc);
        let mut core = CoreCaches::new(&hc);
        let mut machine = Machine::new(&w.module);
        b.iter(|| {
            let mut t = PhaseTrace::default();
            machine
                .run(
                    inner,
                    &[Val::I(0), Val::I(16), Val::I(32)],
                    &mut CachePort { core: &mut core, llc: &mut llc },
                    &mut t,
                )
                .unwrap();
            black_box(t.instrs)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_analysis, bench_affine_generation, bench_skeleton_generation, bench_polyhedral_substrate, bench_interpreter_throughput
}
criterion_main!(benches);
