//! Regenerates **Figure 3** — normalized Time (a), Energy (b) and EDP (c)
//! of CAE (Optimal f.), Manual DAE (Min/Max f., Optimal f.) and Compiler
//! (Auto) DAE (Min/Max f., Optimal f.), all normalized to coupled execution
//! at maximum frequency, for the 500 ns DVFS transition latency of §6.1 and
//! the paper's zero-latency projection.
//!
//! Run: `cargo bench -p dae-bench --bench fig3`

use dae_bench::{geomean, print_table, run_variant, write_csv, write_summary_json, Row};
use dae_power::DvfsConfig;
use dae_runtime::FreqPolicy;
use dae_workloads::{all_benchmarks, Variant};

const CONFIGS: [(&str, Variant, FreqPolicy); 5] = [
    ("CAE opt-f", Variant::Cae, FreqPolicy::CoupledOptimal),
    ("Manual minmax", Variant::ManualDae, FreqPolicy::DaeMinMax),
    ("Manual opt-f", Variant::ManualDae, FreqPolicy::DaeOptimal),
    ("Auto minmax", Variant::AutoDae, FreqPolicy::DaeMinMax),
    ("Auto opt-f", Variant::AutoDae, FreqPolicy::DaeOptimal),
];

fn run_scenario(latency_label: &str, dvfs: DvfsConfig) {
    let columns: Vec<&str> = CONFIGS.iter().map(|(l, _, _)| *l).collect();
    let mut time_rows = Vec::new();
    let mut energy_rows = Vec::new();
    let mut edp_rows = Vec::new();
    let mut reports = Vec::new();

    for mut w in all_benchmarks() {
        w.compile_auto();
        let base = run_variant(&w, Variant::Cae, FreqPolicy::CoupledMax, dvfs);
        reports.push((format!("{}/CAE fmax", w.name), base.clone()));
        let mut t = Vec::new();
        let mut e = Vec::new();
        let mut x = Vec::new();
        for (label, variant, policy) in CONFIGS {
            let r = run_variant(&w, variant, policy, dvfs);
            t.push(r.time_s / base.time_s);
            e.push(r.energy_j / base.energy_j);
            x.push(r.edp() / base.edp());
            reports.push((format!("{}/{label}", w.name), r));
        }
        time_rows.push(Row { label: w.name.to_string(), values: t });
        energy_rows.push(Row { label: w.name.to_string(), values: e });
        edp_rows.push(Row { label: w.name.to_string(), values: x });
    }

    for rows in [&mut time_rows, &mut energy_rows, &mut edp_rows] {
        let n = rows[0].values.len();
        let gm: Vec<f64> = (0..n).map(|c| geomean(rows.iter().map(|r| r.values[c]))).collect();
        rows.push(Row { label: "G.Mean".to_string(), values: gm });
    }

    print_table(
        &format!("Figure 3(a) — Time, normalized to CAE @ fmax [{latency_label}]"),
        &columns,
        &time_rows,
        3,
    );
    print_table(
        &format!("Figure 3(b) — Energy, normalized [{latency_label}]"),
        &columns,
        &energy_rows,
        3,
    );
    print_table(
        &format!("Figure 3(c) — EDP, normalized [{latency_label}]"),
        &columns,
        &edp_rows,
        3,
    );
    let suffix = latency_label.replace(' ', "_");
    write_csv(&format!("fig3_time_{suffix}"), &columns, &time_rows);
    write_csv(&format!("fig3_energy_{suffix}"), &columns, &energy_rows);
    write_csv(&format!("fig3_edp_{suffix}"), &columns, &edp_rows);
    write_summary_json(&format!("fig3_{suffix}"), &reports);

    let gm = &edp_rows.last().expect("geomean row").values;
    println!(
        "\n[{latency_label}] EDP improvement (geomean): Manual opt-f {:.1}%  Auto opt-f {:.1}%",
        (1.0 - gm[2]) * 100.0,
        (1.0 - gm[4]) * 100.0
    );
    let tm = &time_rows.last().expect("geomean row").values;
    println!(
        "[{latency_label}] Time penalty (geomean): Manual opt-f {:+.1}%  Auto opt-f {:+.1}%",
        (tm[2] - 1.0) * 100.0,
        (tm[4] - 1.0) * 100.0
    );
}

fn main() {
    println!("Figure 3 — DAE vs regular task execution");
    run_scenario("500ns", DvfsConfig::latency_500ns());
    run_scenario("0ns", DvfsConfig::instant());
    println!(
        "\npaper reference @500ns: EDP improvement 23% (Manual) / 25% (Auto), ~4% time penalty"
    );
    println!("paper reference @0ns:   EDP improvement 25% (Manual) / 29% (Auto), slight time win");
}
