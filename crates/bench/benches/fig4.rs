//! Regenerates **Figure 4** — runtime and energy profiles of Cholesky (a/d),
//! FFT (b/e) and LibQ (c/f) as a function of the execute-phase frequency
//! (left to right, fmin → fmax), with the access phase pinned at fmin. Each
//! bar is stacked the way the paper stacks it: Prefetch (access), O.S.I.
//! (overhead + sequential + idle) and Task (execute).
//!
//! Run: `cargo bench -p dae-bench --bench fig4`

use dae_bench::{print_table, run_variant, write_csv, Row};
use dae_power::{DvfsConfig, DvfsTable, FreqId, PowerModel};
use dae_runtime::{FreqPolicy, RunReport};
use dae_workloads::{cholesky, fft, libq, Variant, Workload};

/// Time (seconds) split into the paper's stack components plus energy.
fn profile(r: &RunReport) -> (f64, f64, f64, f64) {
    (r.breakdown.access_s, r.breakdown.osi_s(), r.breakdown.execute_s, r.energy_j)
}

fn sweep(w: &Workload, variant: Variant) -> (Vec<Row>, Vec<Row>) {
    let table = DvfsTable::sandybridge();
    let _ = PowerModel::sandybridge();
    let mut time_rows = Vec::new();
    let mut energy_rows = Vec::new();
    for i in 0..table.len() {
        let exec_f = FreqId(i);
        let policy = match variant {
            Variant::Cae => FreqPolicy::CoupledFixed(exec_f),
            _ => FreqPolicy::DaePhases { access: table.min(), execute: exec_f },
        };
        let r = run_variant(w, variant, policy, DvfsConfig::latency_500ns());
        let (prefetch, osi, task, energy) = profile(&r);
        let label = format!("{} @{:.1}GHz", variant.label(), table.point(exec_f).ghz);
        time_rows.push(Row { label: label.clone(), values: vec![prefetch, osi, task, r.time_s] });
        energy_rows.push(Row { label, values: vec![energy] });
    }
    (time_rows, energy_rows)
}

fn run_app(w: &mut Workload, fig_t: &str, fig_e: &str) {
    w.compile_auto();
    let mut time_rows = Vec::new();
    let mut energy_rows = Vec::new();
    for variant in Variant::ALL {
        let (t, e) = sweep(w, variant);
        time_rows.extend(t);
        energy_rows.extend(e);
    }
    let t_cols = ["Prefetch (s)", "O.S.I. (s)", "Task (s)", "makespan (s)"];
    print_table(
        &format!("Figure 4({fig_t}) — {} runtime profile (exec f: fmin→fmax)", w.name),
        &t_cols,
        &time_rows,
        6,
    );
    write_csv(&format!("fig4{fig_t}_{}_time", w.name.to_lowercase()), &t_cols, &time_rows);
    let e_cols = ["Energy (J)"];
    print_table(
        &format!("Figure 4({fig_e}) — {} energy profile", w.name),
        &e_cols,
        &energy_rows,
        6,
    );
    write_csv(&format!("fig4{fig_e}_{}_energy", w.name.to_lowercase()), &e_cols, &energy_rows);
}

fn main() {
    println!("Figure 4 — CAE vs Manual DAE vs Auto DAE across execute frequencies");
    run_app(&mut cholesky::build(), "a", "d");
    run_app(&mut fft::build(), "b", "e");
    run_app(&mut libq::build(), "c", "f");
    println!("\npaper shapes: Task time shrinks with exec frequency for DAE; Prefetch stays flat");
    println!("(access at fmin); Auto prefetch bars are taller than Manual but Task bars shorter;");
    println!("energy falls as the (memory-bound) access share runs at fmin.");
}
