//! Evaluates **profile-guided refinement** against the static auto-DAE
//! compiler: per benchmark, compile statically, replay the workload once
//! through the instrumented scheduler to collect phase profiles, refine
//! with those profiles through the driver's `refine` pass, and compare
//! the EDP of the two builds under identical runtime settings.
//!
//! Writes `target/repro/BENCH_pgo_<mode>.json` recording per-benchmark
//! static/refined EDP and the ISSUE 9 acceptance facts: the geomean
//! refined EDP is no worse than static, at least one benchmark improves
//! by ≥3%, and no benchmark regresses by >1%.
//!
//! Run: `cargo bench -p dae-bench --bench pgo`
//! Smoke (CI): `DAE_BENCH_SMOKE=1 cargo bench -p dae-bench --bench pgo`
//! (or pass `--smoke`): the small-size corpus.

use dae_bench::{geomean, out_dir, print_table, write_summary_json, Row};
use dae_driver::{Driver, DriverConfig};
use dae_ir::verify_module;
use dae_pgo::{ProfileCollector, ProfileSet};
use dae_power::DvfsConfig;
use dae_runtime::{run_workload, run_workload_profiled, FreqPolicy, RunReport, RuntimeConfig};
use dae_trace::json::JsonValue;
use dae_workloads::{all_benchmarks, all_benchmarks_small, Variant, Workload};

fn runtime_cfg() -> RuntimeConfig {
    RuntimeConfig::paper_default()
        .with_policy(FreqPolicy::DaeMinMax)
        .with_dvfs(DvfsConfig::latency_500ns())
}

/// A pristine copy of benchmark `i` of the chosen corpus (compilation
/// mutates the module, so static and refined builds each start fresh).
fn fresh(i: usize, smoke: bool) -> Workload {
    let mut v = if smoke { all_benchmarks_small() } else { all_benchmarks() };
    v.remove(i)
}

/// Compiles `w` through the driver (with `profiles` when given),
/// installs and verifies the result, and returns the workload plus the
/// outcome's base task keys and refined-task count.
fn build(
    mut w: Workload,
    profiles: Option<&ProfileSet>,
) -> (Workload, std::collections::HashMap<dae_ir::FuncId, u64>, usize) {
    let mut driver = Driver::new(&DriverConfig::default());
    if let Some(set) = profiles {
        driver.set_profiles(set.clone());
    }
    let opts = w.auto_options_fn();
    let outcome = driver.compile(&mut w.module, opts);
    let (keys, refined) = (outcome.keys.clone(), outcome.refined);
    w.install_auto(outcome.map);
    verify_module(&w.module).unwrap_or_else(|e| panic!("{}: invalid: {e}", w.name));
    (w, keys, refined)
}

fn run(w: &Workload) -> RunReport {
    run_workload(&w.module, &w.tasks(Variant::AutoDae), &runtime_cfg())
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

/// Replays `w` once through the instrumented scheduler and returns its
/// profiles keyed by the driver's base task keys — exactly the mapping
/// `daec --profile-out` performs.
fn collect(w: &Workload, keys: &std::collections::HashMap<dae_ir::FuncId, u64>) -> ProfileSet {
    let mut col = ProfileCollector::new();
    run_workload_profiled(&w.module, &w.tasks(Variant::AutoDae), &runtime_cfg(), &mut col)
        .unwrap_or_else(|e| panic!("{}: profiled run failed: {e}", w.name));
    let mut set = ProfileSet::default();
    for (func, profile) in col.take() {
        if let Some(&key) = keys.get(&func) {
            set.insert(key, profile);
        }
    }
    set
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--smoke") || std::env::var_os("DAE_BENCH_SMOKE").is_some();
    let mode = if smoke { "smoke" } else { "full" };
    let count = if smoke { all_benchmarks_small().len() } else { all_benchmarks().len() };
    println!("Profile-guided refinement [{mode}]: {count} benchmarks, static vs refined EDP");

    let mut rows = Vec::new();
    let mut bench_json = Vec::new();
    let mut reports = Vec::new();
    let mut ratios = Vec::new();
    let mut any_improved_3pct = false;
    let mut none_regressed_1pct = true;

    for i in 0..count {
        // Static build + one profiled replay of its workload.
        let (w_static, keys, _) = build(fresh(i, smoke), None);
        let static_report = run(&w_static);
        let profiles = collect(&w_static, &keys);

        // Refined build from those profiles, same runtime settings.
        let (w_refined, _, refined_tasks) = build(fresh(i, smoke), Some(&profiles));
        let refined_report = run(&w_refined);

        let (s, r) = (static_report.edp(), refined_report.edp());
        let ratio = r / s;
        ratios.push(ratio);
        any_improved_3pct = any_improved_3pct || ratio <= 0.97;
        none_regressed_1pct = none_regressed_1pct && ratio <= 1.01;

        rows.push(Row {
            label: w_static.name.to_string(),
            values: vec![s, r, (ratio - 1.0) * 100.0, refined_tasks as f64],
        });
        bench_json.push(JsonValue::obj([
            ("name", w_static.name.into()),
            ("static_edp", s.into()),
            ("refined_edp", r.into()),
            ("refined_over_static", ratio.into()),
            ("refined_tasks", refined_tasks.into()),
            ("profile_records", profiles.len().into()),
            ("improved_3pct", (ratio <= 0.97).into()),
            ("regressed_1pct", (ratio > 1.01).into()),
        ]));
        reports.push((format!("{}/static", w_static.name), static_report));
        reports.push((format!("{}/refined", w_static.name), refined_report));
    }

    let gm = geomean(ratios.iter().copied());
    let geomean_no_worse = gm <= 1.0;
    rows.push(Row {
        label: "G.Mean".to_string(),
        values: vec![f64::NAN, f64::NAN, (gm - 1.0) * 100.0, f64::NAN],
    });

    let columns = ["static EDP", "refined EDP", "delta %", "refined tasks"];
    print_table(&format!("Static vs profile-refined auto-DAE EDP [{mode}]"), &columns, &rows, 3);
    println!(
        "\ngeomean refined/static: {gm:.4} ({:+.2}%) — no worse: {}; \
         >=1 benchmark >=3% better: {}; none >1% worse: {}",
        (gm - 1.0) * 100.0,
        if geomean_no_worse { "yes" } else { "NO" },
        if any_improved_3pct { "yes" } else { "NO" },
        if none_regressed_1pct { "yes" } else { "NO" },
    );

    let accepted = geomean_no_worse && any_improved_3pct && none_regressed_1pct;
    let v = JsonValue::obj([
        ("schema", "dae-pgo-bench/1".into()),
        ("mode", mode.into()),
        ("geomean_refined_over_static", gm.into()),
        ("geomean_no_worse", geomean_no_worse.into()),
        ("any_improved_3pct", any_improved_3pct.into()),
        ("none_regressed_1pct", none_regressed_1pct.into()),
        ("accepted", accepted.into()),
        ("benchmarks", JsonValue::Arr(bench_json)),
    ]);
    let path = out_dir().join(format!("BENCH_pgo_{mode}.json"));
    std::fs::write(&path, v.to_json_string()).expect("write pgo bench json");
    println!("   -> {}", path.display());

    write_summary_json(&format!("pgo_{mode}_reports"), &reports);
}
