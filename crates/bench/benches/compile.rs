//! Measures the **compilation pipeline driver** itself: per benchmark, the
//! wall-clock cost of a cold single-job compile, a cold parallel compile
//! and a warm compile answered from the on-disk incremental cache — the
//! ISSUE 4 acceptance facts (warm ≫ cold, parallel cold ≤ serial cold).
//!
//! Every configuration must produce a byte-identical module; the bench
//! asserts this, and asserts that the warm pass hits the cache on every
//! benchmark (at least one hit, every task answered from cache).
//!
//! Writes `target/repro/BENCH_compile_<mode>.json` with the timings,
//! speedups and cache statistics per benchmark.
//!
//! Run: `cargo bench -p dae-bench --bench compile`
//! Smoke (CI): `DAE_BENCH_SMOKE=1 cargo bench -p dae-bench --bench compile`
//! (or pass `--smoke`): reduced-size benchmarks, fewer repetitions.

use dae_bench::{geomean, out_dir, print_table, Row};
use dae_core::CompilerOptions;
use dae_driver::{CompileOutcome, Driver, DriverConfig};
use dae_ir::{print_module, FunctionBuilder, GlobalId, Module, Type, Value};
use dae_trace::json::JsonValue;
use dae_workloads::{all_benchmarks, all_benchmarks_small, Workload};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Builds a fresh copy of benchmark `i` (the driver mutates the module, so
/// every measured compile starts from pristine IR).
fn fresh(i: usize, smoke: bool) -> Workload {
    let mut v = if smoke { all_benchmarks_small() } else { all_benchmarks() };
    v.remove(i)
}

/// One driver compile of `w` with `jobs` workers against `dir`, timed.
fn compile_once(w: &mut Workload, jobs: usize, dir: &Path) -> (f64, CompileOutcome) {
    let opts = w.auto_options_fn();
    let mut drv = Driver::new(&DriverConfig {
        jobs,
        cache_dir: Some(dir.to_path_buf()),
        ..Default::default()
    });
    let t0 = Instant::now();
    let out = drv.compile(&mut w.module, opts);
    (t0.elapsed().as_secs_f64(), out)
}

/// Best-of-`reps` timing for one configuration. `wipe` empties the cache
/// directory before every repetition (cold); otherwise the directory is
/// left as-is (warm). Returns the minimum time, the last outcome and the
/// printed module of the last repetition.
fn measure(
    i: usize,
    smoke: bool,
    jobs: usize,
    dir: &Path,
    wipe: bool,
    reps: usize,
) -> (f64, CompileOutcome, String) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        if wipe {
            let _ = std::fs::remove_dir_all(dir);
        }
        let mut w = fresh(i, smoke);
        let (dt, out) = compile_once(&mut w, jobs, dir);
        best = best.min(dt);
        last = Some((out, print_module(&w.module)));
    }
    let (out, printed) = last.expect("at least one repetition");
    (best, out, printed)
}

/// Adds one GEMM-like task (the `lu_inner` shape — a 3-deep affine nest
/// with three 2-D accesses, the paper's Listing 3 pattern) under `name`.
fn scale_task(m: &mut Module, name: &str, a: GlobalId, n: i64, blk: i64) {
    let mut b = FunctionBuilder::new(name, vec![Type::I64, Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (k0, i0, j0) = (Value::Arg(0), Value::Arg(1), Value::Arg(2));
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
            let gi = b.iadd(i0, i);
            let gj = b.iadd(j0, j);
            let r = b.imul(gi, n);
            let idx = b.iadd(r, gj);
            let dst = b.elem_addr(Value::Global(a), idx, Type::F64);
            let init = b.load(Type::F64, dst);
            let acc = b.counted_loop_carried(
                Value::i64(0),
                Value::i64(blk),
                Value::i64(1),
                vec![init],
                |b, p, c| {
                    let gp = b.iadd(k0, p);
                    let r1 = b.imul(gi, n);
                    let i1 = b.iadd(r1, gp);
                    let lip = b.elem_addr(Value::Global(a), i1, Type::F64);
                    let r2 = b.imul(gp, n);
                    let i2 = b.iadd(r2, gj);
                    let upj = b.elem_addr(Value::Global(a), i2, Type::F64);
                    let vl = b.load(Type::F64, lip);
                    let vu = b.load(Type::F64, upj);
                    let t = b.fmul(vl, vu);
                    vec![b.fsub(c[0], t)]
                },
            );
            b.store(dst, acc[0]);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
}

/// A module with `tasks` structurally identical (but distinctly named, so
/// distinctly keyed) GEMM-like tasks: enough comparable compilation units
/// that the parallel executor is not bound by one task's critical path —
/// the shape of a whole program, rather than of one kernel's module.
fn scaling_module(tasks: usize, n: i64, blk: i64) -> Module {
    let mut m = Module::new();
    let a = m.add_global("a", Type::F64, (n * n) as u64);
    for k in 0..tasks {
        scale_task(&mut m, &format!("scale_t{k}"), a, n, blk);
    }
    m
}

/// Best-of-`reps` cold compile time of the scaling module at `jobs`.
fn measure_scaling(
    tasks: usize,
    n: i64,
    blk: i64,
    jobs: usize,
    dir: &Path,
    reps: usize,
) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut printed = String::new();
    for _ in 0..reps {
        let _ = std::fs::remove_dir_all(dir);
        let mut m = scaling_module(tasks, n, blk);
        let mut drv = Driver::new(&DriverConfig {
            jobs,
            cache_dir: Some(dir.to_path_buf()),
            ..Default::default()
        });
        let t0 = Instant::now();
        let out = drv.compile(&mut m, |_, f| CompilerOptions {
            param_hints: vec![0; f.params.len()],
            ..Default::default()
        });
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(out.generated, tasks, "scaling tasks must all compile");
        if jobs > 1 {
            // The work really fans out: more than one worker compiled
            // something (holds even on one hardware core).
            let workers: std::collections::HashSet<u32> =
                out.spans.iter().map(|s| s.worker).collect();
            assert!(workers.len() > 1, "parallel executor used a single worker: {workers:?}");
        }
        printed = print_module(&m);
    }
    (best, printed)
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--smoke") || std::env::var_os("DAE_BENCH_SMOKE").is_some();
    let (mode, reps) = if smoke { ("smoke", 2) } else { ("full", 3) };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = cores.clamp(2, 4);
    let names: Vec<&'static str> = if smoke { all_benchmarks_small() } else { all_benchmarks() }
        .iter()
        .map(|w| w.name)
        .collect();
    println!(
        "Compilation driver benchmark [{mode}]: {} benchmark(s), best of {reps}, {jobs} jobs parallel",
        names.len()
    );

    let cache_root: PathBuf = out_dir().join("compile-cache");
    let parallel_col = format!("cold {jobs}j ms");
    let columns = ["cold 1j ms", parallel_col.as_str(), "warm ms", "warm spdup", "par spdup"];
    let mut rows = Vec::new();
    let mut bench_json = Vec::new();
    let mut warm_speedups = Vec::new();
    let mut par_speedups = Vec::new();
    let mut all_identical = true;

    for (i, name) in names.iter().enumerate() {
        let dir = cache_root.join(name);

        let (cold1, cold_out, cold_ir) = measure(i, smoke, 1, &dir, true, reps);
        let (coldn, _, par_ir) = measure(i, smoke, jobs, &dir, true, reps);
        // The last parallel repetition left `dir` populated: warm runs
        // replay every task (hits or refusal replays) from disk.
        let (warm, warm_out, warm_ir) = measure(i, smoke, 1, &dir, false, reps);

        assert!(
            warm_out.cache.hits() >= 1,
            "{name}: warm compile produced no cache hit ({:?})",
            warm_out.cache
        );
        assert_eq!(
            warm_out.from_cache, warm_out.tasks,
            "{name}: warm compile missed the cache on some task"
        );
        let identical = cold_ir == par_ir && cold_ir == warm_ir;
        assert!(identical, "{name}: driver output differs across jobs/cache configurations");
        all_identical = all_identical && identical;

        let warm_speedup = cold1 / warm.max(1e-12);
        let par_speedup = cold1 / coldn.max(1e-12);
        warm_speedups.push(warm_speedup);
        par_speedups.push(par_speedup);
        rows.push(Row {
            label: name.to_string(),
            values: vec![cold1 * 1e3, coldn * 1e3, warm * 1e3, warm_speedup, par_speedup],
        });
        bench_json.push(JsonValue::obj([
            ("name", (*name).into()),
            ("tasks", cold_out.tasks.into()),
            ("generated", cold_out.generated.into()),
            ("refused", cold_out.refused.into()),
            ("cold_1j_s", cold1.into()),
            ("cold_parallel_s", coldn.into()),
            ("warm_s", warm.into()),
            ("warm_speedup", warm_speedup.into()),
            ("parallel_speedup", par_speedup.into()),
            ("cold_misses", cold_out.cache.misses.into()),
            ("cold_disk_writes", cold_out.cache.disk_writes.into()),
            ("warm_mem_hits", warm_out.cache.mem_hits.into()),
            ("warm_disk_hits", warm_out.cache.disk_hits.into()),
            ("warm_from_cache", warm_out.from_cache.into()),
            ("identical_output", identical.into()),
        ]));
    }

    // Executor scaling: benchmark modules hold 1–4 tasks with one dominant
    // kernel, so their parallel compile is critical-path-bound. A module
    // with many comparable tasks is where `--jobs` pays off.
    let (sc_tasks, sc_n, sc_blk) = if smoke { (8, 64, 8) } else { (12, 128, 24) };
    let sc_dir = cache_root.join("scaling");
    let (sc_cold1, sc_ir1) = measure_scaling(sc_tasks, sc_n, sc_blk, 1, &sc_dir, reps);
    let (sc_coldn, sc_irn) = measure_scaling(sc_tasks, sc_n, sc_blk, jobs, &sc_dir, reps);
    assert_eq!(sc_ir1, sc_irn, "scaling module differs between 1 and {jobs} jobs");
    let sc_speedup = sc_cold1 / sc_coldn.max(1e-12);

    let warm_gm = geomean(warm_speedups.iter().copied());
    let par_gm = geomean(par_speedups.iter().copied());
    rows.push(Row {
        label: "G.Mean".to_string(),
        values: vec![f64::NAN, f64::NAN, f64::NAN, warm_gm, par_gm],
    });
    print_table(
        &format!("Driver compile time, cold vs warm, 1 vs {jobs} jobs [{mode}]"),
        &columns,
        &rows,
        3,
    );
    println!(
        "\nwarm-cache speedup geomean {warm_gm:.1}x, parallel cold speedup geomean {par_gm:.2}x"
    );
    println!(
        "executor scaling ({sc_tasks} tasks, blk {sc_blk}): cold {:.1} ms at 1 job, \
         {:.1} ms at {jobs} jobs — {sc_speedup:.2}x{}",
        sc_cold1 * 1e3,
        sc_coldn * 1e3,
        if cores < 2 { " (single hardware core: ~1.0x expected)" } else { "" }
    );
    println!("byte-identical module everywhere: {}", if all_identical { "yes" } else { "NO" });

    let v = JsonValue::obj([
        ("schema", "dae-compile-bench/1".into()),
        ("mode", mode.into()),
        ("reps", reps.into()),
        ("parallel_jobs", jobs.into()),
        ("hardware_cores", cores.into()),
        ("warm_speedup_geomean", warm_gm.into()),
        ("parallel_speedup_geomean", par_gm.into()),
        ("warm_at_least_5x", (warm_gm >= 5.0).into()),
        // `null` when the host has one core: two workers on one CPU cannot
        // beat one worker, so the wall-clock comparison carries no signal.
        (
            "parallel_cold_faster",
            if cores >= 2 { (sc_speedup > 1.0).into() } else { JsonValue::Null },
        ),
        (
            "scaling",
            JsonValue::obj([
                ("tasks", sc_tasks.into()),
                ("n", (sc_n as u64).into()),
                ("blk", (sc_blk as u64).into()),
                ("cold_1j_s", sc_cold1.into()),
                ("cold_parallel_s", sc_coldn.into()),
                ("parallel_speedup", sc_speedup.into()),
            ]),
        ),
        ("identical_output_everywhere", all_identical.into()),
        ("benchmarks", JsonValue::Arr(bench_json)),
    ]);
    let path = out_dir().join(format!("BENCH_compile_{mode}.json"));
    std::fs::write(&path, v.to_json_string()).expect("write compile bench json");
    println!("   -> {}", path.display());
}
