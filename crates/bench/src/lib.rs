//! # dae-bench — harness regenerating every table and figure of the paper
//!
//! Shared machinery for the bench targets (`cargo bench -p dae-bench`):
//!
//! * [`run_variant`] — executes one benchmark under one
//!   variant/policy/DVFS-latency configuration and returns the runtime
//!   report,
//! * [`Row`]/[`print_table`]/[`write_csv`] — aligned text tables on stdout
//!   plus CSV files under `target/repro/`,
//! * [`write_summary_json`] — machine-readable `BENCH_<name>.json` files
//!   with the full [`RunReport`] per configuration,
//! * [`geomean`] — the paper's summary statistic.
//!
//! | Bench target | Regenerates |
//! |---|---|
//! | `table1` | Table 1 (application characteristics) |
//! | `fig3` | Figure 3 a/b/c at 500 ns and the 0 ns projection |
//! | `fig4` | Figure 4 a–f (per-frequency time/energy profiles) |
//! | `ablations` | design-choice ablations from DESIGN.md |
//! | `compiler_perf` | criterion benches of the compiler itself |

#![warn(missing_docs)]

use dae_power::DvfsConfig;
use dae_runtime::{run_workload, FreqPolicy, RunReport, RuntimeConfig};
use dae_trace::json::JsonValue;
use dae_workloads::{Variant, Workload};
use std::fs;
use std::path::PathBuf;

/// Runs `workload` under the given variant, policy and DVFS latency.
///
/// # Panics
///
/// Panics on interpreter traps — benchmark programs are expected to run.
pub fn run_variant(
    w: &Workload,
    variant: Variant,
    policy: FreqPolicy,
    dvfs: DvfsConfig,
) -> RunReport {
    let cfg = RuntimeConfig::paper_default().with_policy(policy).with_dvfs(dvfs);
    run_workload(&w.module, &w.tasks(variant), &cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

/// The output directory for CSV artefacts (`target/repro`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/repro");
    fs::create_dir_all(&dir).expect("create target/repro");
    dir
}

/// One row of an output table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (benchmark name, configuration, …).
    pub label: String,
    /// Cell values, one per column.
    pub values: Vec<f64>,
}

/// Prints an aligned table with a title and column headers.
pub fn print_table(title: &str, columns: &[&str], rows: &[Row], precision: usize) {
    println!("\n== {title} ==");
    print!("{:<22}", "");
    for c in columns {
        print!("{c:>14}");
    }
    println!();
    for r in rows {
        print!("{:<22}", r.label);
        for v in &r.values {
            print!("{v:>14.precision$}");
        }
        println!();
    }
}

/// Writes the same table as CSV under `target/repro/<name>.csv`.
pub fn write_csv(name: &str, columns: &[&str], rows: &[Row]) {
    let mut text = String::from("label");
    for c in columns {
        text.push(',');
        text.push_str(c);
    }
    text.push('\n');
    for r in rows {
        text.push_str(&r.label);
        for v in &r.values {
            text.push_str(&format!(",{v}"));
        }
        text.push('\n');
    }
    let path = out_dir().join(format!("{name}.csv"));
    fs::write(&path, text).expect("write csv");
    println!("   -> {}", path.display());
}

/// Writes full run reports as `target/repro/BENCH_<name>.json` — one
/// labelled [`RunReport`] per entry, serialised with the hand-rolled JSON
/// writer so downstream plotting needs no CSV re-parsing.
pub fn write_summary_json(name: &str, entries: &[(String, RunReport)]) {
    let v = JsonValue::obj([
        ("schema", "dae-bench-report/1".into()),
        ("bench", name.into()),
        (
            "runs",
            JsonValue::Arr(
                entries
                    .iter()
                    .map(|(label, report)| {
                        JsonValue::obj([
                            ("label", label.as_str().into()),
                            ("report", report.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = out_dir().join(format!("BENCH_{name}.json"));
    fs::write(&path, v.to_json_string()).expect("write bench json");
    println!("   -> {}", path.display());
}

/// Geometric mean of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean needs positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn run_variant_smoke() {
        let w = dae_workloads::lu::build_sized(16, 8);
        let r = run_variant(&w, Variant::Cae, FreqPolicy::CoupledMax, DvfsConfig::latency_500ns());
        assert!(r.time_s > 0.0);
    }

    #[test]
    fn summary_json_carries_labelled_reports() {
        let w = dae_workloads::lu::build_sized(16, 8);
        let r = run_variant(&w, Variant::Cae, FreqPolicy::CoupledMax, DvfsConfig::latency_500ns());
        write_summary_json("unit_test", &[("lu/cae".to_string(), r.clone())]);
        let text = fs::read_to_string(out_dir().join("BENCH_unit_test.json")).unwrap();
        let v = dae_trace::json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("dae-bench-report/1"));
        let runs = v.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("label").unwrap().as_str(), Some("lu/cae"));
        let time = runs[0].get("report").unwrap().get("time_s").unwrap().as_f64().unwrap();
        assert_eq!(time.to_bits(), r.time_s.to_bits());
    }
}
