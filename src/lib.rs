//! # dae-repro — reproduction of *"Fix the code. Don't tweak the hardware"*
//!
//! A from-scratch Rust implementation of the CGO 2014 paper by Jimborean,
//! Koukos, Spiliopoulos, Black-Schaffer and Kaxiras: a compiler that
//! automatically splits task-based programs into a memory-bound **access
//! phase** (prefetching, run at low frequency) and a compute-bound
//! **execute phase** (the original task, run at high frequency on a warm
//! cache), maximising what DVFS can deliver.
//!
//! This crate is the workspace façade: it re-exports every layer so
//! examples and downstream users need a single dependency.
//!
//! | crate | role |
//! |---|---|
//! | [`ir`] | typed SSA IR with prefetch (LLVM-IR stand-in) |
//! | [`analysis`] | CFG/dominators/loops/SCEV + transforms (LLVM passes) |
//! | [`poly`] | exact polyhedral library (PolyLib stand-in) |
//! | [`compiler`] | §5 access-phase generation — the paper's contribution |
//! | [`driver`] | parallel, incrementally-cached compilation pipeline manager |
//! | [`mem`] | Sandybridge-like cache hierarchy |
//! | [`power`] | the §3.2 DVFS power/energy/EDP model |
//! | [`sim`] | IR interpreter + OoO interval timing model |
//! | [`runtime`] | task runtime: work stealing + per-phase DVFS |
//! | [`governor`] | online profiling-guided per-phase DVFS governor |
//! | [`pgo`] | persistent phase profiles + profile-guided refinement |
//! | [`serve`] | concurrent compile-and-simulate network service (`daed`) |
//! | [`gate`] | sharded, fault-tolerant gateway over a `daed` fleet (`daeg`) |
//! | [`trace`] | event-level tracing: Perfetto/Chrome-trace + summary JSON |
//! | [`workloads`] | the seven evaluation benchmarks |
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for paper-vs-measured numbers.
//!
//! # Examples
//!
//! ```
//! use dae_repro::compiler::{generate_access, CompilerOptions, Strategy};
//! use dae_repro::ir::{FunctionBuilder, Module, Type, Value};
//!
//! let mut module = Module::new();
//! let a = module.add_global("a", Type::F64, 4096);
//! let mut b = FunctionBuilder::new("touch_chunk", vec![Type::I64], Type::Void);
//! b.set_task();
//! b.counted_loop(Value::i64(0), Value::i64(256), Value::i64(1), |b, i| {
//!     let idx = b.iadd(Value::Arg(0), i);
//!     let p = b.elem_addr(Value::Global(a), idx, Type::F64);
//!     let v = b.load(Type::F64, p);
//!     let w = b.fadd(v, 1.0f64);
//!     b.store(p, w);
//! });
//! b.ret(None);
//! let task = module.add_function(b.finish());
//!
//! let opts = CompilerOptions { param_hints: vec![0], ..Default::default() };
//! let access = generate_access(&module, task, &opts)?;
//! assert!(matches!(access.strategy, Strategy::Polyhedral(_)));
//! # Ok::<(), dae_repro::compiler::RefuseReason>(())
//! ```

#![warn(missing_docs)]

pub use dae_analysis as analysis;
pub use dae_core as compiler;
pub use dae_driver as driver;
pub use dae_gate as gate;
pub use dae_governor as governor;
pub use dae_ir as ir;
pub use dae_mem as mem;
pub use dae_pgo as pgo;
pub use dae_poly as poly;
pub use dae_power as power;
pub use dae_runtime as runtime;
pub use dae_serve as serve;
pub use dae_sim as sim;
pub use dae_trace as trace;
pub use dae_workloads as workloads;
