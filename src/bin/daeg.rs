//! `daeg` — the DAE gateway daemon.
//!
//! Fronts a fleet of `daed` backends with the same newline-delimited-JSON
//! protocol the backends speak: consistent-hash routing on the request's
//! cache key, health probing with ejection and re-admission, bounded-load
//! spill, retries with capped exponential backoff, optional hedging, and
//! deadline-budget propagation. A `shutdown` request or SIGTERM/SIGINT
//! starts a graceful drain.
//!
//! ```text
//! daeg --backends HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
//!      [--routers N] [--queue-depth N] [--vnodes N] [--inflight-cap N]
//!      [--eject-after N] [--readmit-ms MS] [--probe-ms MS]
//!      [--attempt-timeout-ms MS] [--retries N] [--hedge-ms MS]
//!      [--trace <file>]
//! ```
//!
//! * `--backends` — comma-separated `daed` addresses (required)
//! * `--addr` — bind address (default `127.0.0.1:7780`; port 0 picks an
//!   ephemeral port, printed on the `listening` line)
//! * `--routers` — router threads forwarding work requests (default 8)
//! * `--queue-depth` — admission-queue capacity; beyond it requests are
//!   shed with `gate.overloaded` (default 128)
//! * `--vnodes` — virtual nodes per backend on the hash ring (default 128)
//! * `--inflight-cap` — per-backend in-flight cap before bounded-load
//!   spill (default 32)
//! * `--eject-after` — consecutive failures before ejection (default 3)
//! * `--readmit-ms` — cooldown before an ejected backend goes half-open
//!   (default 500)
//! * `--probe-ms` — health-probe period; 0 disables probing (default 100)
//! * `--attempt-timeout-ms` — per-attempt forwarding timeout
//!   (default 10000)
//! * `--retries` — extra attempts on another backend after a failure
//!   (default 2)
//! * `--hedge-ms` — hedge a slow request on the next backend after this
//!   long; 0 disables hedging (default 0)
//! * `--trace` — write a Chrome-trace JSON of `GateRoute`/`BackendEject`
//!   events to this file on drain
//!
//! The first stdout line is machine-parseable:
//! `daeg: listening on 127.0.0.1:34567`.

use dae_repro::gate::{GateConfig, Gateway};
use dae_repro::serve::install_signal_drain;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    config: GateConfig,
    trace_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut config = GateConfig { addr: "127.0.0.1:7780".to_string(), ..GateConfig::default() };
    let mut trace_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        let parse_u64 = |what: &str, v: String| {
            v.parse::<u64>().map_err(|e| format!("bad value for {what}: {e}"))
        };
        match a.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--backends" => {
                config.backends = value("--backends")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--routers" => {
                config.routers = parse_u64("--routers", value("--routers")?)? as usize;
                if config.routers == 0 {
                    return Err("--routers must be at least 1".into());
                }
            }
            "--queue-depth" => {
                config.queue_depth = parse_u64("--queue-depth", value("--queue-depth")?)? as usize;
                if config.queue_depth == 0 {
                    return Err("--queue-depth must be at least 1".into());
                }
            }
            "--vnodes" => {
                config.vnodes = parse_u64("--vnodes", value("--vnodes")?)? as usize;
                if config.vnodes == 0 {
                    return Err("--vnodes must be at least 1".into());
                }
            }
            "--inflight-cap" => {
                config.inflight_cap =
                    parse_u64("--inflight-cap", value("--inflight-cap")?)? as usize;
                if config.inflight_cap == 0 {
                    return Err("--inflight-cap must be at least 1".into());
                }
            }
            "--eject-after" => {
                config.eject_after = parse_u64("--eject-after", value("--eject-after")?)? as u32;
                if config.eject_after == 0 {
                    return Err("--eject-after must be at least 1".into());
                }
            }
            "--readmit-ms" => {
                config.readmit_ms = parse_u64("--readmit-ms", value("--readmit-ms")?)?
            }
            "--probe-ms" => {
                config.probe_interval_ms = parse_u64("--probe-ms", value("--probe-ms")?)?
            }
            "--attempt-timeout-ms" => {
                config.attempt_timeout_ms =
                    parse_u64("--attempt-timeout-ms", value("--attempt-timeout-ms")?)?;
                if config.attempt_timeout_ms == 0 {
                    return Err("--attempt-timeout-ms must be at least 1".into());
                }
            }
            "--retries" => config.max_retries = parse_u64("--retries", value("--retries")?)? as u32,
            "--hedge-ms" => config.hedge_after_ms = parse_u64("--hedge-ms", value("--hedge-ms")?)?,
            "--trace" => {
                trace_out = Some(PathBuf::from(value("--trace")?));
                config.trace = true;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`\n\
                     usage: daeg --backends HOST:PORT,... [--addr HOST:PORT] [--routers N] \
                     [--queue-depth N] [--vnodes N] [--inflight-cap N] [--eject-after N] \
                     [--readmit-ms MS] [--probe-ms MS] [--attempt-timeout-ms MS] [--retries N] \
                     [--hedge-ms MS] [--trace <file>]"
                ))
            }
        }
    }
    if config.backends.is_empty() {
        return Err("--backends is required (comma-separated daed addresses)".into());
    }
    Ok(Args { config, trace_out })
}

fn main() -> ExitCode {
    match run_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("daeg: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_main() -> Result<(), String> {
    let args = parse_args()?;
    let gateway = Gateway::bind(&args.config)
        .map_err(|e| format!("cannot bind {}: {e}", args.config.addr))?;
    let addr = gateway.local_addr().map_err(|e| e.to_string())?;
    install_signal_drain();
    println!("daeg: listening on {addr}");
    println!(
        "daeg: {} backends ({}), {} routers, queue depth {}",
        args.config.backends.len(),
        args.config.backends.join(", "),
        args.config.routers,
        args.config.queue_depth
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    gateway.run().map_err(|e| format!("gateway failed: {e}"))?;
    if let Some(path) = &args.trace_out {
        use dae_repro::trace::{Recorder, TraceSink as _};
        let events = gateway.trace_events();
        let mut rec = Recorder::new(gateway.trace_lanes());
        for e in events.iter().cloned() {
            rec.record(e);
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, dae_repro::trace::chrome::chrome_trace_json(&rec))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("daeg: {} trace events -> {}", events.len(), path.display());
    }
    println!("daeg: drained, bye");
    Ok(())
}
