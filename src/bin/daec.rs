//! `daec` — command-line driver for the DAE access-phase compiler.
//!
//! Reads a module in the textual IR format, generates an access phase for
//! every `task fn`, and prints the transformed module (or a report).
//!
//! ```text
//! daec <file.dae> [--report] [--run] [--policy <spec>] [--hints a,b,c]
//!      [--jobs N] [--cache-dir <dir>] [--cache-max-mb <mb>]
//!      [--engine tree|bytecode] [--no-polyhedral] [--no-cfg-simplify]
//!      [--line-dedup] [--prefetch-writes]
//!      [--profile-in <file>] [--profile-out <file>] [--profile-dir <dir>]
//!      [--trace-out <file> [--trace-format chrome|summary]]
//! ```
//!
//! * `--report` — print per-task strategy/statistics instead of IR
//! * `--jobs` — compile tasks on N worker threads (default 1). The output
//!   module is bit-identical at any job count.
//! * `--cache-dir` — persist compiled access phases in `<dir>`; warm
//!   recompiles of unchanged tasks skip the polyhedral analysis entirely
//! * `--cache-max-mb` — byte budget (approximate, in MiB) of the in-memory
//!   artifact cache tier (default 64)
//! * `--run` — additionally execute every task (coupled vs decoupled) and
//!   report time/energy/EDP under the paper's machine model
//! * `--policy` — frequency policy for the decoupled runs (`--policy help`
//!   lists every spec; default `dae-optimal`). `governed`,
//!   `governed:heuristic` and `governed:bandit[:<seed>]` choose frequencies
//!   online with the dae-governor
//! * `--hints` — representative parameter values for profitability counts
//!   (applied to every task)
//! * `--engine` — simulator execution engine for `--run`/`--trace-out`
//!   (`bytecode` by default; `tree` is the reference interpreter — results
//!   are identical, bytecode is several times faster)
//! * `--profile-in` — load a phase-profile document and compile through
//!   the profile-guided `refine` pass; with `--policy governed:bandit`
//!   the profiles also warm-start the bandit's per-class priors
//! * `--profile-out` — run every task once after compiling and write the
//!   collected phase profiles to `<file>` (merging with `--profile-in`)
//! * `--profile-dir` — persistent per-record profile store: loads every
//!   record before compiling and writes collected records through
//! * `--trace-out` — run every task once (decoupled where possible, under
//!   the selected `--policy`) with event tracing on and write the trace to
//!   `<file>`
//! * `--trace-format` — `chrome` (default; open in
//!   <https://ui.perfetto.dev> or `chrome://tracing`) or `summary`
//!   (compact aggregate JSON)
//!
//! Try it on the bundled examples: `cargo run --bin daec -- examples/ir/stream.dae --report --run`

use dae_repro::compiler::{CompilerOptions, Strategy};
use dae_repro::driver::{emit_spans, CompileOutcome, Driver, DriverConfig};
use dae_repro::governor::{BanditConfig, BanditEdp, GovernorKind, TaskClass};
use dae_repro::ir::{parse::parse_module, print_module, verify_module, CodedError, Function};
use dae_repro::pgo::{store::DEFAULT_MAX_RECORDS, ProfileCollector, ProfileStore};
use dae_repro::runtime::{
    run_workload, run_workload_governed, run_workload_profiled, run_workload_traced, CompileStats,
    FreqPolicy, RuntimeConfig, TaskInstance,
};
use dae_repro::sim::{EngineKind, Val};
use dae_repro::trace::{chrome, json::JsonValue, summary, NullSink, Recorder};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Chrome,
    Summary,
}

struct Args {
    file: String,
    report: bool,
    run: bool,
    hints: Vec<i64>,
    opts: CompilerOptions,
    policy: FreqPolicy,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    jobs: usize,
    cache_dir: Option<PathBuf>,
    cache_max_mb: usize,
    engine: EngineKind,
    profile_in: Option<String>,
    profile_out: Option<String>,
    profile_dir: Option<PathBuf>,
}

/// `Ok(None)` means the invocation was fully handled (e.g. `--policy help`).
fn parse_args() -> Result<Option<Args>, String> {
    let mut file = None;
    let mut report = false;
    let mut run = false;
    let mut hints = Vec::new();
    let mut opts = CompilerOptions::default();
    let mut policy = FreqPolicy::DaeOptimal;
    let mut trace_out = None;
    let mut trace_format = TraceFormat::Chrome;
    let mut jobs = 1usize;
    let mut cache_dir = None;
    let mut cache_max_mb = 64usize;
    let mut engine = EngineKind::default();
    let mut profile_in = None;
    let mut profile_out = None;
    let mut profile_dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => report = true,
            "--run" => run = true,
            "--policy" => {
                let spec = it.next().ok_or("--policy needs a value (try --policy help)")?;
                if spec == "help" {
                    println!("{}", FreqPolicy::help());
                    return Ok(None);
                }
                policy = FreqPolicy::parse(&spec, &RuntimeConfig::paper_default().table)?;
            }
            "--hints" => {
                let v = it.next().ok_or("--hints needs a value")?;
                hints = v
                    .split(',')
                    .map(|s| s.trim().parse::<i64>().map_err(|e| format!("bad hint: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--trace-out" => trace_out = Some(it.next().ok_or("--trace-out needs a path")?),
            "--trace-format" => {
                trace_format = match it.next().ok_or("--trace-format needs a value")?.as_str() {
                    "chrome" => TraceFormat::Chrome,
                    "summary" => TraceFormat::Summary,
                    other => {
                        return Err(format!(
                            "bad trace format `{other}` (expected chrome or summary)"
                        ))
                    }
                };
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v.parse::<usize>().map_err(|e| format!("bad job count: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(it.next().ok_or("--cache-dir needs a path")?));
            }
            "--cache-max-mb" => {
                let v = it.next().ok_or("--cache-max-mb needs a value")?;
                cache_max_mb = v.parse::<usize>().map_err(|e| format!("bad cache budget: {e}"))?;
                if cache_max_mb == 0 {
                    return Err("--cache-max-mb must be at least 1".into());
                }
            }
            "--engine" => {
                engine = EngineKind::parse(&it.next().ok_or("--engine needs a value")?)?;
            }
            "--profile-in" => {
                profile_in = Some(it.next().ok_or("--profile-in needs a path")?);
            }
            "--profile-out" => {
                profile_out = Some(it.next().ok_or("--profile-out needs a path")?);
            }
            "--profile-dir" => {
                profile_dir = Some(PathBuf::from(it.next().ok_or("--profile-dir needs a path")?));
            }
            "--no-polyhedral" => opts.enable_polyhedral = false,
            "--no-cfg-simplify" => opts.cfg_simplify = false,
            "--line-dedup" => opts.line_dedup = true,
            "--prefetch-writes" => opts.prefetch_writes = true,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(Args {
        file: file.ok_or(
            "usage: daec <file.dae> [--report] [--run] [--policy <spec>] [--hints a,b,c] [--trace-out <file>]",
        )?,
        report,
        run,
        hints,
        opts,
        policy,
        trace_out,
        trace_format,
        jobs,
        cache_dir,
        cache_max_mb,
        engine,
        profile_in,
        profile_out,
        profile_dir,
    }))
}

/// The report-facing view of a driver compile: deterministic counts only.
fn compile_stats(outcome: &CompileOutcome) -> CompileStats {
    CompileStats {
        tasks: outcome.tasks,
        generated: outcome.generated,
        refused: outcome.refused,
        from_cache: outcome.from_cache,
        mem_hits: outcome.cache.mem_hits,
        disk_hits: outcome.cache.disk_hits,
        misses: outcome.cache.misses,
        evictions: outcome.cache.evictions,
    }
}

/// Argument vector for one task invocation: integer hints positionally,
/// zero elsewhere.
fn argv_for(f: &Function, hints: &[i64]) -> Vec<Val> {
    f.params
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            dae_repro::ir::Type::F64 => Val::F(0.0),
            _ => Val::I(hints.get(i).copied().unwrap_or(0)),
        })
        .collect()
}

fn main() -> ExitCode {
    match run_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("daec: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_main() -> Result<(), String> {
    let args = match parse_args()? {
        Some(args) => args,
        None => return Ok(()),
    };
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let mut module = parse_module(&text).map_err(|e| e.to_string())?;
    verify_module(&module).map_err(|e| e.to_string())?;

    let tasks = module.task_ids();
    if tasks.is_empty() {
        return Err("module contains no `task fn`".into());
    }

    let hints = args.hints.clone();
    let opts = args.opts.clone();

    // Profile store: `--profile-dir` opens the persistent per-record
    // store; `--profile-in`/`--profile-out` alone work on an in-memory
    // store loaded from / saved to a single document. A hostile profile
    // file fails with its dotted `pgo.*` code — it never panics.
    let mut store = match &args.profile_dir {
        Some(dir) => Some(
            ProfileStore::open_dir(dir, DEFAULT_MAX_RECORDS)
                .map_err(|e| format!("{}: {e}", e.code()))?,
        ),
        None if args.profile_in.is_some() || args.profile_out.is_some() => {
            Some(ProfileStore::new())
        }
        None => None,
    };
    if let (Some(store), Some(path)) = (store.as_mut(), &args.profile_in) {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: cannot read {path}: {e}", dae_repro::pgo::codes::IO))?;
        store.merge_document(&text).map_err(|e| format!("{}: {e}", e.code()))?;
    }

    let mut driver = Driver::new(&DriverConfig {
        jobs: args.jobs,
        cache_dir: args.cache_dir.clone(),
        mem_max_bytes: args.cache_max_mb << 20,
    });
    if let Some(store) = &store {
        driver.set_profiles(store.snapshot());
    }
    let outcome = driver.compile(&mut module, |_, f| CompilerOptions {
        param_hints: if hints.len() == f.params.len() {
            hints.clone()
        } else {
            vec![0; f.params.len()]
        },
        ..opts.clone()
    });
    let map = &outcome.map;
    verify_module(&module).map_err(|e| e.to_string())?;

    if args.report {
        println!("{:<20} {:<12} detail", "task", "strategy");
        for task in &tasks {
            let name = &module.func(*task).name;
            match map.strategy_of.get(task) {
                Some(Strategy::Polyhedral(s)) => println!(
                    "{name:<20} {:<12} NOrig={} NconvUn={} classes={} nests={} depth {}→{}",
                    "polyhedral",
                    s.n_orig,
                    s.n_conv_un,
                    s.classes,
                    s.nests,
                    s.orig_depth,
                    s.gen_depth
                ),
                Some(Strategy::Skeleton) => {
                    let info = &map.info_of[task];
                    println!(
                        "{name:<20} {:<12} affine loops {}/{}, {} loads ({} non-affine)",
                        "skeleton",
                        info.loops_affine,
                        info.loops_total,
                        info.total_loads,
                        info.non_affine_loads
                    );
                }
                None => println!("{name:<20} {:<12} {}", "refused", map.refused[task]),
            }
        }
        let c = &outcome.cache;
        println!(
            "compile: {} tasks, {} generated, {} refused, {} from cache \
             (mem {} / disk {} / miss {})",
            outcome.tasks,
            outcome.generated,
            outcome.refused,
            outcome.from_cache,
            c.mem_hits,
            c.disk_hits,
            c.misses
        );
    } else {
        print!("{}", print_module(&module));
    }

    // Profile collection: one run of every task (decoupled where an
    // access phase was generated) with the phase counters on, merged
    // into the store under the task's *base* compile key so the next
    // compile finds them regardless of refinement.
    let collecting = args.profile_out.is_some() || args.profile_dir.is_some();
    if let Some(st) = store.as_mut().filter(|_| collecting) {
        let insts: Vec<TaskInstance> = tasks
            .iter()
            .map(|t| {
                let argv = argv_for(module.func(*t), &args.hints);
                match map.access(*t) {
                    Some(a) => TaskInstance::decoupled(*t, a, argv),
                    None => TaskInstance::coupled(*t, argv),
                }
            })
            .collect();
        let cfg = RuntimeConfig::paper_default().with_policy(args.policy).with_engine(args.engine);
        let mut col = ProfileCollector::new();
        run_workload_profiled(&module, &insts, &cfg, &mut col).map_err(|e| e.to_string())?;
        for (func, p) in col.take() {
            if let Some(&key) = outcome.keys.get(&func) {
                st.merge_record(key, &p);
            }
        }
        if let Some(path) = &args.profile_out {
            st.save_file(path).map_err(|e| format!("{}: {e}", e.code()))?;
        }
        let s = st.stats();
        println!(
            "profile: {} records resident ({} merged, {} skipped, {} written)",
            s.resident, s.merged, s.skipped_records, s.written
        );
    }

    if args.run {
        println!();
        let hints = &args.hints;
        let base = RuntimeConfig::paper_default().with_engine(args.engine);
        let plabel = args.policy.label(&base.table);
        // Warm-started bandit: measured phase boundedness from the
        // profile store seeds the per-class priors, so the governor
        // starts greedy near the measured optimum instead of sweeping.
        let mut seeded: Option<BanditEdp> = match (&args.policy, store.as_mut()) {
            (FreqPolicy::Governed(GovernorKind::Bandit { seed }), Some(st)) if !st.is_empty() => {
                let mut gov = BanditEdp::new(
                    base.table.clone(),
                    BanditConfig { seed: *seed, ..Default::default() },
                );
                let mut any = false;
                for task in &tasks {
                    let f = module.func(*task);
                    let p = match outcome.keys.get(task).and_then(|k| st.get(*k)) {
                        Some(p) if p.runs > 0 => p,
                        _ => continue,
                    };
                    let access_mb = (p.access.instrs > 0).then(|| {
                        (p.access.mem_bound_ppm_sum as f64 / p.runs as f64 / 1e6).clamp(0.0, 1.0)
                    });
                    gov.seed_prior(
                        TaskClass::of(*task, &argv_for(f, hints)),
                        access_mb,
                        p.execute_mem_bound(),
                    );
                    any = true;
                }
                any.then_some(gov)
            }
            _ => None,
        };
        for task in &tasks {
            let f = module.func(*task);
            let argv = argv_for(f, hints);
            let name = f.name.clone();
            let cae = vec![TaskInstance::coupled(*task, argv.clone())];
            let r1 = run_workload(&module, &cae, &base).map_err(|e| e.to_string())?;
            print!("{name:<20} CAE@fmax {:>9.3}us {:>9.3}uJ", r1.time_s * 1e6, r1.energy_j * 1e6);
            if let Some(access) = map.access(*task) {
                let dae = vec![TaskInstance::decoupled(*task, access, argv)];
                let run_cfg = base.clone().with_policy(args.policy);
                let r2 = match seeded.as_mut() {
                    Some(gov) => run_workload_governed(&module, &dae, &run_cfg, gov, &mut NullSink)
                        .map_err(|e| e.to_string())?,
                    None => run_workload(&module, &dae, &run_cfg).map_err(|e| e.to_string())?,
                };
                println!(
                    "   DAE {plabel} {:>9.3}us {:>9.3}uJ   EDP {:+.1}%",
                    r2.time_s * 1e6,
                    r2.energy_j * 1e6,
                    (r2.edp() / r1.edp() - 1.0) * 100.0
                );
            } else {
                println!("   (no access phase)");
            }
        }
    }

    if let Some(path) = &args.trace_out {
        // One traced run of the whole module: every task fn as one
        // instance, decoupled where an access phase was generated, under
        // the selected frequency policy.
        let insts: Vec<TaskInstance> = tasks
            .iter()
            .map(|t| {
                let argv = argv_for(module.func(*t), &args.hints);
                match map.access(*t) {
                    Some(a) => TaskInstance::decoupled(*t, a, argv),
                    None => TaskInstance::coupled(*t, argv),
                }
            })
            .collect();
        let cfg = RuntimeConfig::paper_default().with_policy(args.policy).with_engine(args.engine);
        let mut rec = Recorder::new(cfg.cores);
        emit_spans(&outcome.spans, rec.cores(), &mut rec);
        let mut report =
            run_workload_traced(&module, &insts, &cfg, &mut rec).map_err(|e| e.to_string())?;
        report.compile = Some(compile_stats(&outcome));
        let meta: Vec<(String, JsonValue)> = vec![
            ("source".to_string(), args.file.as_str().into()),
            ("policy".to_string(), cfg.policy.label(&cfg.table).as_str().into()),
            ("report".to_string(), report.to_json()),
        ];
        let text = match args.trace_format {
            TraceFormat::Chrome => chrome::chrome_trace_json_with(&rec, meta),
            TraceFormat::Summary => summary::summary_json_with(&rec, meta),
        };
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        let what = match args.trace_format {
            TraceFormat::Chrome => "chrome trace (open in ui.perfetto.dev)",
            TraceFormat::Summary => "summary JSON",
        };
        println!("trace: {} events over {} cores -> {path} [{what}]", rec.len(), rec.cores());
    }
    Ok(())
}
