//! `dae-load` — deterministic seeded load generator for `daed` and `daeg`.
//!
//! Replays a reproducible request mix (see `dae_serve::load`) and writes a
//! `BENCH_serve_*.json` / `BENCH_gate_*.json` report with throughput and
//! latency percentiles.
//!
//! ```text
//! dae-load [--target serve|gate] [--addr HOST:PORT] [--requests N]
//!          [--clients N] [--seed S] [--mix compile|run|mixed|warm]
//!          [--workers 1,2,8] [--fleets 1,2,3] [--trials N]
//!          [--engine tree|bytecode] [--out <file>] [--allow-shed]
//! ```
//!
//! `--target serve` (the default) measures the daemon itself:
//!
//! * **`--addr`** — drive an already-running daemon; writes
//!   `BENCH_serve_load.json`. Exits non-zero if any request failed or was
//!   shed (pass `--allow-shed` when overload is the point).
//! * **no `--addr`** — the self-contained benchmark: an in-process server
//!   per `--workers` entry (default `1,2,8`), each warmed and driven with
//!   the same seeded mix, compared against a serial cold-engine baseline;
//!   writes `BENCH_serve_workers.json` with a `speedup_vs_serial_cold`
//!   column. `--engine` selects the simulator execution engine for the
//!   in-process servers and the baseline, making tree-vs-bytecode
//!   throughput A/B runs one command each (in `--addr` mode the engine is
//!   whatever the remote daemon was started with, so the flag is refused).
//!
//! `--target gate` measures the gateway:
//!
//! * **`--addr`** — drive an already-running `daeg`; writes
//!   `BENCH_gate_load.json` (the protocol is identical, so the same mix
//!   machinery applies; `gate.overloaded` counts as shed).
//! * **no `--addr`** — the self-contained gateway benchmark: an in-process
//!   fleet per `--fleets` entry (default `1,2,3`) behind one gateway, each
//!   backend's response cache sized to *half* the probed working set so a
//!   single backend must thrash, driven with the warm mix and compared
//!   against a single direct `daed` baseline; writes
//!   `BENCH_gate_workers.json` with a `speedup_vs_single_direct` column.
//!
//! Reports land in `target/repro/` unless `--out` says otherwise.

use dae_repro::gate::{bench_gate, GateBenchConfig};
use dae_repro::serve::{bench_workers, run_load, EngineKind, LoadConfig, Mix};
use dae_repro::trace::json::JsonValue;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    target: Target,
    addr: Option<String>,
    requests: usize,
    clients: usize,
    seed: u64,
    mix: Mix,
    workers: Vec<usize>,
    fleets: Vec<usize>,
    trials: usize,
    engine: Option<EngineKind>,
    out: Option<PathBuf>,
    allow_shed: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Target {
    Serve,
    Gate,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: Target::Serve,
        addr: None,
        requests: 200,
        clients: 4,
        seed: 42,
        mix: Mix::Compile,
        workers: vec![1, 2, 8],
        fleets: vec![1, 2, 3],
        trials: 3,
        engine: None,
        out: None,
        allow_shed: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--target" => {
                args.target = match value("--target")?.as_str() {
                    "serve" => Target::Serve,
                    "gate" => Target::Gate,
                    other => return Err(format!("unknown target `{other}` (serve or gate)")),
                }
            }
            "--addr" => args.addr = Some(value("--addr")?),
            "--requests" => {
                args.requests =
                    value("--requests")?.parse().map_err(|e| format!("bad request count: {e}"))?
            }
            "--clients" => {
                args.clients =
                    value("--clients")?.parse().map_err(|e| format!("bad client count: {e}"))?;
                if args.clients == 0 {
                    return Err("--clients must be at least 1".into());
                }
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("bad seed: {e}"))?
            }
            "--mix" => args.mix = Mix::parse(&value("--mix")?)?,
            "--workers" => {
                args.workers = value("--workers")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("bad workers: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.workers.is_empty() || args.workers.contains(&0) {
                    return Err("--workers needs positive counts, e.g. 1,2,8".into());
                }
            }
            "--fleets" => {
                args.fleets = value("--fleets")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("bad fleets: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.fleets.is_empty() || args.fleets.contains(&0) {
                    return Err("--fleets needs positive counts, e.g. 1,2,3".into());
                }
            }
            "--trials" => {
                args.trials =
                    value("--trials")?.parse().map_err(|e| format!("bad trial count: {e}"))?;
                if args.trials == 0 {
                    return Err("--trials must be at least 1".into());
                }
            }
            "--engine" => args.engine = Some(EngineKind::parse(&value("--engine")?)?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--allow-shed" => args.allow_shed = true,
            other => {
                return Err(format!(
                    "unknown argument `{other}`\n\
                     usage: dae-load [--target serve|gate] [--addr HOST:PORT] [--requests N] \
                     [--clients N] [--seed S] [--mix compile|run|mixed|warm] [--workers 1,2,8] \
                     [--fleets 1,2,3] [--trials N] [--engine tree|bytecode] [--out <file>] \
                     [--allow-shed]"
                ))
            }
        }
    }
    if args.addr.is_some() && args.engine.is_some() {
        return Err("--engine only applies to the self-contained bench mode (no --addr): \
             a remote daemon's engine is fixed by its own --engine flag"
            .into());
    }
    if args.target == Target::Gate && args.engine.is_some() {
        return Err("--engine is not supported with --target gate \
             (the gateway bench always uses the default engine)"
            .into());
    }
    Ok(args)
}

fn write_report(path: &PathBuf, doc: &JsonValue) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(path, doc.to_json_string())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    match run_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dae-load: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_main() -> Result<(), String> {
    let args = parse_args()?;
    if args.target == Target::Gate && args.addr.is_none() {
        return run_gate_bench(&args);
    }
    match &args.addr {
        Some(addr) => {
            let cfg = LoadConfig {
                addr: addr.clone(),
                requests: args.requests,
                clients: args.clients,
                seed: args.seed,
                mix: args.mix,
            };
            let report = run_load(&cfg).map_err(|e| format!("load against {addr} failed: {e}"))?;
            let default_out = match args.target {
                Target::Serve => "target/repro/BENCH_serve_load.json",
                Target::Gate => "target/repro/BENCH_gate_load.json",
            };
            let out = args.out.unwrap_or_else(|| PathBuf::from(default_out));
            write_report(&out, &report.to_json())?;
            println!(
                "dae-load: {} sent, {} ok, {} failed, {} shed \
                 | {:.1} req/s, p50 {:.2} ms, p99 {:.2} ms -> {}",
                report.sent,
                report.ok,
                report.failed,
                report.shed,
                report.throughput_rps(),
                report.hist.quantile_s(0.50) * 1e3,
                report.hist.quantile_s(0.99) * 1e3,
                out.display()
            );
            if report.failed > 0 {
                return Err(format!("{} requests failed", report.failed));
            }
            if report.shed > 0 && !args.allow_shed {
                return Err(format!(
                    "{} requests shed (pass --allow-shed to tolerate)",
                    report.shed
                ));
            }
            Ok(())
        }
        None => {
            let doc = bench_workers(
                &args.workers,
                args.requests,
                args.clients,
                args.seed,
                args.mix,
                args.trials,
                args.engine.unwrap_or_default(),
            )
            .map_err(|e| format!("bench failed: {e}"))?;
            let out =
                args.out.unwrap_or_else(|| PathBuf::from("target/repro/BENCH_serve_workers.json"));
            write_report(&out, &doc)?;
            let base_rps = doc
                .get("baseline")
                .and_then(|b| b.get("throughput_rps"))
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            println!("dae-load: serial cold baseline {base_rps:.1} req/s");
            if let Some(servers) = doc.get("servers").and_then(JsonValue::as_arr) {
                for s in servers {
                    println!(
                        "dae-load: {} workers: {:.1} req/s ({:.1}x serial cold), p99 {:.2} ms",
                        s.get("workers").and_then(JsonValue::as_f64).unwrap_or(0.0),
                        s.get("throughput_rps").and_then(JsonValue::as_f64).unwrap_or(0.0),
                        s.get("speedup_vs_serial_cold").and_then(JsonValue::as_f64).unwrap_or(0.0),
                        s.get("latency")
                            .and_then(|l| l.get("p99_s"))
                            .and_then(JsonValue::as_f64)
                            .unwrap_or(0.0)
                            * 1e3,
                    );
                }
            }
            println!("dae-load: report -> {}", out.display());
            Ok(())
        }
    }
}

/// The self-contained gateway benchmark (`--target gate`, no `--addr`).
fn run_gate_bench(args: &Args) -> Result<(), String> {
    let cfg = GateBenchConfig {
        fleets: args.fleets.clone(),
        requests: args.requests,
        clients: args.clients,
        seed: args.seed,
        trials: args.trials,
        ..GateBenchConfig::default()
    };
    let doc = bench_gate(&cfg).map_err(|e| format!("gate bench failed: {e}"))?;
    let out =
        args.out.clone().unwrap_or_else(|| PathBuf::from("target/repro/BENCH_gate_workers.json"));
    write_report(&out, &doc)?;
    let base_rps = doc
        .get("baseline_direct")
        .and_then(|b| b.get("throughput_rps"))
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    println!(
        "dae-load: single direct daed baseline {base_rps:.1} req/s \
         (cache budget {} KiB, working set {} KiB)",
        doc.get("backend_cache_budget_bytes").and_then(JsonValue::as_f64).unwrap_or(0.0) / 1024.0,
        doc.get("working_set_bytes").and_then(JsonValue::as_f64).unwrap_or(0.0) / 1024.0,
    );
    if let Some(gateways) = doc.get("gateways").and_then(JsonValue::as_arr) {
        for g in gateways {
            println!(
                "dae-load: gateway x{} backends: {:.1} req/s ({:.2}x single direct), p99 {:.2} ms",
                g.get("backends").and_then(JsonValue::as_f64).unwrap_or(0.0),
                g.get("throughput_rps").and_then(JsonValue::as_f64).unwrap_or(0.0),
                g.get("speedup_vs_single_direct").and_then(JsonValue::as_f64).unwrap_or(0.0),
                g.get("latency")
                    .and_then(|l| l.get("p99_s"))
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0)
                    * 1e3,
            );
        }
    }
    println!("dae-load: report -> {}", out.display());
    Ok(())
}
