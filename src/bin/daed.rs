//! `daed` — the DAE compile-and-simulate daemon.
//!
//! Accepts untrusted IR text over newline-delimited JSON on a TCP socket
//! and serves `compile`, `report`, `run`, `stats`, `profiles` and
//! `health` requests; a `shutdown` request or SIGTERM/SIGINT starts a
//! graceful drain.
//!
//! ```text
//! daed [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!      [--cache-dir <dir>] [--cache-max-mb <mb>] [--max-global-mb <mb>]
//!      [--engine tree|bytecode] [--recompile-ms N]
//! ```
//!
//! * `--addr` — bind address (default `127.0.0.1:7777`; port 0 picks an
//!   ephemeral port, printed on the `listening` line)
//! * `--workers` — worker threads executing requests (default 4)
//! * `--queue-depth` — admission-queue capacity; requests beyond it are
//!   shed with `serve.overloaded` (default 64)
//! * `--cache-dir` — persist compiled access phases on disk, shared with
//!   `daec --cache-dir`
//! * `--cache-max-mb` — in-memory artifact-cache byte budget (default 64)
//! * `--max-global-mb` — refuse modules declaring more global data than
//!   this, in MiB (default 256)
//! * `--engine` — simulator execution engine for `run` requests
//!   (`bytecode` by default; `tree` is the reference interpreter —
//!   responses are identical either way)
//! * `--recompile-ms` — period of the background profile-guided
//!   recompile worker (0, the default, disables it). Each pass
//!   recompiles recently-run modules against the profiles collected from
//!   `run` requests, publishing refined artifacts into the shared
//!   incremental cache; responses stay byte-identical throughout (watch
//!   progress via the `profiles` op)
//!
//! The first stdout line is machine-parseable:
//! `daed: listening on 127.0.0.1:34567` — tests and scripts bind port 0
//! and scrape the actual address from it.
//!
//! Try it: `daed --addr 127.0.0.1:7777 &` then
//! `printf '{"id":1,"op":"health"}\n' | nc 127.0.0.1 7777`

use dae_repro::driver::DriverConfig;
use dae_repro::serve::{
    install_signal_drain, signal_drain_requested, EngineConfig, EngineKind, Server, ServerConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Detached background loop: one [`dae_repro::serve::Engine::recompile_pass`] per period,
/// exiting promptly once the server drains. Detached (not joined) because
/// a pass is short and the engine outlives the loop via its `Arc`.
fn spawn_recompile_worker(server: &Server, period_ms: u64) {
    let engine = server.engine();
    let drain = server.drain_flag();
    std::thread::spawn(move || {
        let step = Duration::from_millis(50);
        let period = Duration::from_millis(period_ms.max(1));
        let mut slept = Duration::ZERO;
        loop {
            if drain.load(Ordering::SeqCst) || signal_drain_requested() {
                return;
            }
            std::thread::sleep(step.min(period));
            slept += step.min(period);
            if slept >= period {
                slept = Duration::ZERO;
                engine.recompile_pass();
            }
        }
    });
}

struct Args {
    addr: String,
    workers: usize,
    queue_depth: usize,
    cache_dir: Option<PathBuf>,
    cache_max_mb: usize,
    max_global_mb: u64,
    engine: EngineKind,
    recompile_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7777".to_string(),
        workers: 4,
        queue_depth: 64,
        cache_dir: None,
        cache_max_mb: 64,
        max_global_mb: 256,
        engine: EngineKind::default(),
        recompile_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers =
                    value("--workers")?.parse().map_err(|e| format!("bad worker count: {e}"))?;
                if args.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--queue-depth" => {
                args.queue_depth =
                    value("--queue-depth")?.parse().map_err(|e| format!("bad queue depth: {e}"))?;
                if args.queue_depth == 0 {
                    return Err("--queue-depth must be at least 1".into());
                }
            }
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--cache-max-mb" => {
                args.cache_max_mb = value("--cache-max-mb")?
                    .parse()
                    .map_err(|e| format!("bad cache budget: {e}"))?;
                if args.cache_max_mb == 0 {
                    return Err("--cache-max-mb must be at least 1".into());
                }
            }
            "--max-global-mb" => {
                args.max_global_mb = value("--max-global-mb")?
                    .parse()
                    .map_err(|e| format!("bad global cap: {e}"))?;
                if args.max_global_mb == 0 {
                    return Err("--max-global-mb must be at least 1".into());
                }
            }
            "--engine" => args.engine = EngineKind::parse(&value("--engine")?)?,
            "--recompile-ms" => {
                args.recompile_ms = value("--recompile-ms")?
                    .parse()
                    .map_err(|e| format!("bad recompile period: {e}"))?;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`\n\
                     usage: daed [--addr HOST:PORT] [--workers N] [--queue-depth N] \
                     [--cache-dir <dir>] [--cache-max-mb <mb>] [--max-global-mb <mb>] \
                     [--engine tree|bytecode] [--recompile-ms N]"
                ))
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("daed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_main() -> Result<(), String> {
    let args = parse_args()?;
    let config = ServerConfig {
        addr: args.addr,
        workers: args.workers,
        queue_depth: args.queue_depth,
        engine: EngineConfig {
            driver: DriverConfig {
                jobs: 1,
                cache_dir: args.cache_dir,
                mem_max_bytes: args.cache_max_mb << 20,
            },
            max_global_bytes: args.max_global_mb << 20,
            engine: args.engine,
            ..EngineConfig::default()
        },
    };
    let server = Server::bind(&config).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    install_signal_drain();
    println!("daed: listening on {addr}");
    println!(
        "daed: {} workers, queue depth {}, cache {} MiB{}",
        args.workers,
        args.queue_depth,
        args.cache_max_mb,
        match &config.engine.driver.cache_dir {
            Some(d) => format!(" (+ disk tier at {})", d.display()),
            None => String::new(),
        }
    );
    if args.recompile_ms > 0 {
        println!("daed: profile-guided recompile worker every {} ms", args.recompile_ms);
        spawn_recompile_worker(&server, args.recompile_ms);
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| format!("serve failed: {e}"))?;
    println!("daed: drained, bye");
    Ok(())
}
